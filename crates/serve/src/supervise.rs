//! Worker supervision: per-shard aggregators that survive panics.
//!
//! Each shard worker runs under an in-thread supervisor: message
//! processing is wrapped in [`catch_unwind`], and the worker keeps a
//! **checkpoint + journal** pair it can rebuild from —
//!
//! * every `checkpoint_every` messages the accumulator is serialized
//!   (via [`ShardAggregate::checkpoint_bytes`], which reuses the
//!   databases' canonical `snapshot_bytes` encoding) and the journal
//!   is cleared;
//! * every successfully absorbed message is appended to the journal
//!   (by *moving* the already-owned batch, so the lossless hot path
//!   never clones a sample).
//!
//! On a panic the supervisor records the failure, rebuilds the
//! accumulator from checkpoint-plus-journal-replay, and **retries the
//! in-flight message once**: a transient panic (the common injected
//! case) therefore loses nothing and the recovered `snapshot()` is
//! byte-identical to direct aggregation. A message that panics twice
//! is dropped whole with exact accounting (`lost_to_panics`) — a
//! crash loses at most the in-flight batch. A worker that exhausts
//! its recovery budget (or cannot deserialize its own checkpoint)
//! fails the shard loudly: it closes its queue so producers unblock
//! and later `snapshot`/`shutdown` calls surface
//! [`ProfileError::WorkerCrashed`](profileme_core::ProfileError).
//!
//! [`catch_unwind`]: std::panic::catch_unwind

use crate::faults::{ActiveFaults, FaultAction};
use crate::queue::BoundedQueue;
use crate::service::ShardAggregate;
use profileme_core::ProfileError;
use serde::Serialize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Configuration of the per-shard supervision layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SuperviseConfig {
    /// Whether workers recover from panics at all. Disabled, a panic
    /// tears the worker down (the pre-supervision behavior) and
    /// surfaces as `WorkerCrashed`.
    pub enabled: bool,
    /// Messages between checkpoints — also the journal's bound, and
    /// therefore the worst-case replay length on recovery.
    pub checkpoint_every: u32,
    /// Recoveries each shard may perform before giving up; a bound so
    /// a deterministically-poisonous stream cannot spin forever.
    pub max_recoveries: u32,
}

impl Default for SuperviseConfig {
    fn default() -> SuperviseConfig {
        SuperviseConfig {
            enabled: true,
            checkpoint_every: 32,
            max_recoveries: 1024,
        }
    }
}

impl SuperviseConfig {
    /// Checks the configuration.
    ///
    /// # Errors
    ///
    /// Rejects a zero checkpoint interval.
    pub fn validate(&self) -> Result<(), ProfileError> {
        if self.checkpoint_every == 0 {
            return Err(ProfileError::config(
                "checkpoint_every",
                "must be at least 1 (got 0)",
            ));
        }
        Ok(())
    }
}

/// One unit of aggregation work (the journal's entry type).
pub(crate) enum Work<A: ShardAggregate> {
    /// A single streamed item.
    One(A::Item),
    /// One buffered-delivery batch.
    Batch(Vec<A::Item>),
}

impl<A: ShardAggregate> Work<A> {
    pub(crate) fn len(&self) -> u64 {
        match self {
            Work::One(_) => 1,
            Work::Batch(items) => items.len() as u64,
        }
    }

    pub(crate) fn absorb_into(&self, acc: &mut A) {
        match self {
            Work::One(item) => acc.absorb(item),
            Work::Batch(items) => items.iter().for_each(|i| acc.absorb(i)),
        }
    }
}

/// A queue message: work, or a snapshot barrier.
pub(crate) enum Msg<A: ShardAggregate> {
    /// Aggregate this.
    Work(Work<A>),
    /// Barrier: everything enqueued to this shard before it is
    /// aggregated before the reply is sent.
    Snapshot(mpsc::Sender<A>),
}

/// Per-shard accounting shared between the worker and the service.
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    pub enqueued: AtomicU64,
    pub dropped: AtomicU64,
    pub retried: AtomicU64,
    pub panics: AtomicU64,
    pub recoveries: AtomicU64,
    pub lost_to_panics: AtomicU64,
    pub checkpoints: AtomicU64,
    /// Set when the worker gives up (recovery budget exhausted or
    /// checkpoint restore failed); the service reports `WorkerCrashed`.
    pub crashed: AtomicBool,
}

/// Everything one shard worker needs.
pub(crate) struct WorkerCtx<A: ShardAggregate> {
    pub shard: usize,
    pub queue: Arc<BoundedQueue<Msg<A>>>,
    pub empty: A,
    pub cfg: SuperviseConfig,
    pub counters: Arc<ShardCounters>,
    /// The final accumulator travels back over this channel so the
    /// service can reap results with a bounded wait (a bare
    /// `JoinHandle::join` cannot time out).
    pub done: mpsc::Sender<A>,
    /// Present only when a `FaultPlan` was activated (which requires
    /// the `fault-injection` feature); `None` costs one branch per
    /// message.
    pub faults: Option<Arc<ActiveFaults>>,
}

/// Applies any injected fault for this (shard, message) pair. May
/// panic — that is the point — so callers run it under the same
/// `catch_unwind` as the absorb itself.
fn apply_fault<A: ShardAggregate>(ctx: &WorkerCtx<A>, idx: Option<u64>) {
    let (Some(faults), Some(idx)) = (&ctx.faults, idx) else {
        return;
    };
    match faults.action(ctx.shard, idx) {
        None => {}
        Some(FaultAction::Panic) => {
            panic!("injected fault: panic at shard {} message {idx}", ctx.shard)
        }
        Some(FaultAction::Delay(d)) => std::thread::sleep(d),
        Some(FaultAction::Stall) => {
            // Park until the service tears down; deliberately ignores
            // queue close so deadline paths genuinely time out.
            while !faults.stall_released() {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Rebuilds a shard accumulator from its last checkpoint plus a replay
/// of the journal — the state exactly as of the last successfully
/// absorbed message.
fn rebuild<A: ShardAggregate>(
    empty: &A,
    checkpoint: Option<&[u8]>,
    journal: &[Work<A>],
) -> Result<A, ProfileError> {
    let mut acc = match checkpoint {
        Some(bytes) => A::from_checkpoint_bytes(bytes)?,
        None => empty.clone(),
    };
    for work in journal {
        work.absorb_into(&mut acc);
    }
    Ok(acc)
}

/// Marks the shard crashed and closes its queue on any abnormal worker
/// exit — an explicit give-up *or* a panic unwinding the thread (the
/// unsupervised path) — so producers unblock and `snapshot`/`shutdown`
/// surface `WorkerCrashed` instead of hanging on a barrier no one will
/// ever answer.
struct CrashGuard<'a, A: ShardAggregate> {
    counters: &'a ShardCounters,
    queue: &'a BoundedQueue<Msg<A>>,
    armed: bool,
}

impl<A: ShardAggregate> Drop for CrashGuard<'_, A> {
    fn drop(&mut self) {
        if self.armed {
            self.counters.crashed.store(true, Ordering::Release);
            self.queue.close();
            // Drain what the dead shard will never process: abandoned
            // work is counted as dropped, and dropping pending snapshot
            // barriers disconnects their channels so callers get
            // `WorkerCrashed` instead of blocking forever on a reply.
            while let Some(msg) = self.queue.pop() {
                if let Msg::Work(work) = msg {
                    self.counters
                        .dropped
                        .fetch_add(work.len(), Ordering::Relaxed);
                }
            }
        }
    }
}

/// The shard worker: pops messages until the queue closes, absorbing
/// under supervision, then sends the final accumulator over `done`.
pub(crate) fn run_worker<A: ShardAggregate>(ctx: WorkerCtx<A>) {
    let mut guard = CrashGuard {
        counters: &ctx.counters,
        queue: &ctx.queue,
        armed: true,
    };
    let mut acc = ctx.empty.clone();
    let mut checkpoint: Option<Vec<u8>> = None;
    let mut journal: Vec<Work<A>> = Vec::new();
    let mut since_checkpoint = 0u32;
    let mut recoveries_left = ctx.cfg.max_recoveries;
    while let Some(msg) = ctx.queue.pop() {
        let work = match msg {
            // A dropped receiver just means the snapshot caller went away.
            Msg::Snapshot(tx) => {
                drop(tx.send(acc.clone()));
                continue;
            }
            Msg::Work(work) => work,
        };
        // One fault index per message: a retry of the same message
        // re-evaluates the same index, so one-shot faults stay one-shot.
        let fault_idx = ctx.faults.as_ref().map(|f| f.next_message(ctx.shard));

        if !ctx.cfg.enabled {
            // Unsupervised: let the panic tear the thread down. The
            // `done` sender drops with it and the service reports
            // `WorkerCrashed`.
            apply_fault(&ctx, fault_idx);
            work.absorb_into(&mut acc);
            continue;
        }

        let mut absorbed = false;
        for _attempt in 0..2 {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                apply_fault(&ctx, fault_idx);
                work.absorb_into(&mut acc);
            }));
            match outcome {
                Ok(()) => {
                    absorbed = true;
                    break;
                }
                Err(_) => {
                    ctx.counters.panics.fetch_add(1, Ordering::Relaxed);
                    if recoveries_left == 0 {
                        // Budget exhausted: the guard marks the shard
                        // crashed and closes the queue.
                        return;
                    }
                    recoveries_left -= 1;
                    // The panic may have left `acc` half-updated;
                    // rebuild it to the last consistent state.
                    match rebuild(&ctx.empty, checkpoint.as_deref(), &journal) {
                        Ok(rebuilt) => {
                            acc = rebuilt;
                            ctx.counters.recoveries.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            // Cannot restore our own checkpoint: fail
                            // the shard loudly (via the guard) rather
                            // than serve a silently-wrong aggregate.
                            return;
                        }
                    }
                }
            }
        }
        if absorbed {
            journal.push(work);
            since_checkpoint += 1;
            if since_checkpoint >= ctx.cfg.checkpoint_every {
                // On serialization failure keep the journal: recovery
                // replays more but stays exact.
                if let Ok(bytes) = acc.checkpoint_bytes() {
                    checkpoint = Some(bytes);
                    journal.clear();
                    since_checkpoint = 0;
                    ctx.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
                }
            }
        } else {
            // Both attempts panicked: the in-flight message is lost,
            // and `acc` was rebuilt to exclude it — exact accounting.
            ctx.counters
                .lost_to_panics
                .fetch_add(work.len(), Ordering::Relaxed);
        }
    }
    guard.armed = false;
    drop(ctx.done.send(acc));
}
