//! Worker supervision: per-shard aggregators that survive panics.
//!
//! Each shard worker runs under an in-thread supervisor: message
//! processing is wrapped in [`catch_unwind`], and the worker keeps a
//! **checkpoint + journal** pair it can rebuild from —
//!
//! * every `checkpoint_every` messages the accumulator is serialized
//!   (via [`ShardAggregate::checkpoint_bytes`], which reuses the
//!   databases' canonical `encode(WireFormat::Sparse)` wire image)
//!   and the journal
//!   is cleared;
//! * every successfully absorbed message is appended to the journal
//!   (by *moving* the already-owned batch, so the lossless hot path
//!   never clones a sample).
//!
//! On a panic the supervisor records the failure, rebuilds the
//! accumulator from checkpoint-plus-journal-replay, and **retries the
//! in-flight message once**: a transient panic (the common injected
//! case) therefore loses nothing and the recovered `snapshot()` is
//! byte-identical to direct aggregation. A message that panics twice
//! is dropped whole with exact accounting (`lost_to_panics`) — a
//! crash loses at most the in-flight batch. A worker that exhausts
//! its recovery budget (or cannot deserialize its own checkpoint)
//! fails the shard loudly: it closes its ring so producers unblock
//! and later `snapshot`/`shutdown` calls surface
//! [`ProfileError::WorkerCrashed`](profileme_core::ProfileError).
//!
//! # Snapshots without barrier round-trips
//!
//! Snapshots no longer travel through the work ring as sentinel
//! messages. Instead each shard carries a [`SnapShared`] mailbox: the
//! service records the ring's enqueue position as a **watermark**,
//! bumps a request epoch, and drops a cheap [`Msg::Nudge`] into the
//! ring so an idle (parked) worker wakes up. The worker publishes a
//! clone of its accumulator into one of two epoch-parity slots as soon
//! as it has processed every ring position below the watermark — the
//! same "everything enqueued before the call is included" guarantee
//! the old barrier gave, without ever making ingest wait on a snapshot
//! reply channel. See [`SnapShared`] for the full protocol and its
//! memory-ordering argument.
//!
//! [`catch_unwind`]: std::panic::catch_unwind

use crate::faults::{ActiveFaults, FaultAction};
use crate::ring::RingBuffer;
use crate::service::{ShardAggregate, SnapshotPlane};
use profileme_core::ProfileError;
use serde::Serialize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Configuration of the per-shard supervision layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SuperviseConfig {
    /// Whether workers recover from panics at all. Disabled, a panic
    /// tears the worker down (the pre-supervision behavior) and
    /// surfaces as `WorkerCrashed`.
    pub enabled: bool,
    /// Messages between checkpoints — also the journal's bound, and
    /// therefore the worst-case replay length on recovery.
    pub checkpoint_every: u32,
    /// Recoveries each shard may perform before giving up; a bound so
    /// a deterministically-poisonous stream cannot spin forever.
    pub max_recoveries: u32,
}

impl Default for SuperviseConfig {
    fn default() -> SuperviseConfig {
        SuperviseConfig {
            enabled: true,
            // Checkpoints ride the sparse columnar encoding, so they
            // cost O(touched rows) instead of a full-table serialize —
            // cheap enough to take twice as often, halving the
            // worst-case journal replay on recovery.
            checkpoint_every: 16,
            max_recoveries: 1024,
        }
    }
}

impl SuperviseConfig {
    /// Checks the configuration.
    ///
    /// # Errors
    ///
    /// Rejects a zero checkpoint interval.
    pub fn validate(&self) -> Result<(), ProfileError> {
        if self.checkpoint_every == 0 {
            return Err(ProfileError::config(
                "checkpoint_every",
                "must be at least 1 (got 0)",
            ));
        }
        Ok(())
    }
}

/// One unit of aggregation work (the journal's entry type).
pub(crate) enum Work<A: ShardAggregate> {
    /// A single streamed item.
    One(A::Item),
    /// One buffered-delivery batch.
    Batch(Vec<A::Item>),
    /// A batch admitted against a queue-share credit (the multi-tenant
    /// path): the shared counter was incremented by the batch length at
    /// admission and [`settle`](Work::settle) releases it when the
    /// batch permanently leaves the pipeline.
    Credited(Vec<A::Item>, Arc<AtomicU64>),
}

impl<A: ShardAggregate> Work<A> {
    pub(crate) fn len(&self) -> u64 {
        match self {
            Work::One(_) => 1,
            Work::Batch(items) | Work::Credited(items, _) => items.len() as u64,
        }
    }

    pub(crate) fn absorb_into(&self, acc: &mut A) {
        match self {
            Work::One(item) => acc.absorb(item),
            Work::Batch(items) | Work::Credited(items, _) => {
                items.iter().for_each(|i| acc.absorb(i));
            }
        }
    }

    /// Releases this work's admission credit, if it carries one.
    ///
    /// Called exactly once per message, at the moment it permanently
    /// leaves the pipeline: absorbed into the accumulator, dropped
    /// whole after a double panic, or drained by the crash guard.
    /// Journal replay deliberately does **not** settle — the journal's
    /// copy is recovery bookkeeping for an absorb that already settled.
    pub(crate) fn settle(&self) {
        if let Work::Credited(items, credit) = self {
            credit.fetch_sub(items.len() as u64, Ordering::Relaxed);
        }
    }
}

/// A ring message: work, or a wakeup poke for the snapshot protocol.
pub(crate) enum Msg<A: ShardAggregate> {
    /// Aggregate this.
    Work(Work<A>),
    /// Wake an idle worker so it notices a pending [`SnapShared`]
    /// request. Carries no data, is not journaled, and does not
    /// consume a fault index — but it *does* occupy a ring position,
    /// which is fine because watermarks only ever require processing
    /// *more* positions, never fewer.
    Nudge,
}

/// What a worker hands a snapshot requester for one epoch.
pub(crate) enum Publication<A> {
    /// The dense plane: a full clone of the shard accumulator.
    Full(A),
    /// The delta plane: sparse delta chunks, oldest first, together
    /// covering everything the shard absorbed since the last chunk a
    /// requester actually consumed. Usually one chunk; more when the
    /// worker carried forward chunks from abandoned deadline epochs
    /// (see [`maybe_publish`]).
    Delta(Vec<Vec<u8>>),
}

/// The per-shard snapshot mailbox: how a consistent accumulator view
/// travels from the worker to a snapshot caller without a barrier
/// message round-trip.
///
/// # Protocol
///
/// The service serializes snapshot cycles (one at a time), so each
/// shard has at most one outstanding request:
///
/// 1. The requester stores `watermark` = the ring's enqueue position
///    (everything enqueued before the snapshot call sits below it),
///    then bumps `requested` to a fresh epoch, then nudges the ring.
/// 2. After every message it finishes, the worker checks: if
///    `requested` names an epoch it has not published and its count of
///    processed ring positions has reached `watermark`, it publishes
///    into `slots[epoch & 1]` — a full accumulator clone on the dense
///    plane, or the sparse delta since its last publish on the delta
///    plane — and stores `published = epoch`.
/// 3. The requester waits on `cv` until `published >= epoch` (or the
///    shard crashes), then takes `slots[epoch & 1]`.
///
/// # Why two slots
///
/// A deadline-bounded snapshot can abandon its epoch mid-flight; the
/// worker may publish that stale epoch arbitrarily late. Alternating
/// slots by epoch parity means a late stale publish lands in the slot
/// the *next* request does not read. Two consecutive abandonments
/// reuse a parity, but then the worker's stale write is ordered before
/// its fresh one (same thread), and the requester only reads after
/// observing `published >= epoch`, which the fresh write precedes.
///
/// On the delta plane an abandoned publication is not merely stale —
/// it is the *only* copy of that span of the shard's history (the
/// worker's delta base has already moved past it). So before
/// publishing a fresh epoch the worker sweeps **both** slots and
/// carries any unconsumed delta chunks into the new publication, ahead
/// of the fresh chunk. The sweep cannot race a reader: cycles are
/// serialized, and a slot is only swept while its epoch is either
/// already consumed (empty) or permanently abandoned.
///
/// # Memory ordering
///
/// `watermark` is stored before `requested` (Release); the worker
/// reads `requested` with Acquire, so a matching watermark is always
/// visible. The publication is written under the slot's `Mutex` and
/// `published` is stored with Release after it; the requester's
/// Acquire load of `published` plus the slot lock orders the read
/// after the write. `crashed` (in [`ShardCounters`]) uses
/// Release/Acquire so a requester that sees it also sees the drained
/// ring.
pub(crate) struct SnapShared<A> {
    /// Epoch of the most recent snapshot request (0 = never).
    pub requested: AtomicU64,
    /// Ring enqueue position the current request must cover.
    pub watermark: AtomicU64,
    /// Epoch of the most recent publish (0 = never).
    pub published: AtomicU64,
    /// Double buffer, indexed by `epoch & 1`.
    pub slots: [Mutex<Option<Publication<A>>>; 2],
    /// Requesters park here; the worker (or the crash guard) notifies.
    pub gate: Mutex<()>,
    pub cv: Condvar,
}

impl<A> SnapShared<A> {
    pub(crate) fn new() -> SnapShared<A> {
        SnapShared {
            requested: AtomicU64::new(0),
            watermark: AtomicU64::new(0),
            published: AtomicU64::new(0),
            slots: [Mutex::new(None), Mutex::new(None)],
            gate: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Wakes any requester parked on `cv`.
    pub(crate) fn notify(&self) {
        let _guard = self.gate.lock().unwrap_or_else(PoisonError::into_inner);
        self.cv.notify_all();
    }

    /// Parks a requester briefly; the predicate is re-checked by the
    /// caller's loop, and the bounded timeout makes a lost notify cost
    /// latency, never a hang.
    pub(crate) fn wait(&self, timeout: Duration) {
        let guard = self.gate.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = self
            .cv
            .wait_timeout(guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
    }
}

/// Per-shard accounting shared between the worker and the service.
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    pub enqueued: AtomicU64,
    pub dropped: AtomicU64,
    pub retried: AtomicU64,
    pub panics: AtomicU64,
    pub recoveries: AtomicU64,
    pub lost_to_panics: AtomicU64,
    pub checkpoints: AtomicU64,
    /// Delta publications shipped through the snapshot mailbox.
    pub deltas_published: AtomicU64,
    /// Serialized bytes across those delta publications.
    pub delta_bytes: AtomicU64,
    /// Set when the worker gives up (recovery budget exhausted or
    /// checkpoint restore failed); the service reports `WorkerCrashed`.
    pub crashed: AtomicBool,
}

/// Everything one shard worker needs.
pub(crate) struct WorkerCtx<A: ShardAggregate> {
    pub shard: usize,
    pub ring: Arc<RingBuffer<Msg<A>>>,
    pub snap: Arc<SnapShared<A>>,
    pub empty: A,
    pub cfg: SuperviseConfig,
    /// Which publication kind this worker ships at snapshot epochs.
    pub plane: SnapshotPlane,
    pub counters: Arc<ShardCounters>,
    /// The final accumulator travels back over this channel so the
    /// service can reap results with a bounded wait (a bare
    /// `JoinHandle::join` cannot time out).
    pub done: mpsc::Sender<A>,
    /// Present only when a `FaultPlan` was activated (which requires
    /// the `fault-injection` feature); `None` costs one branch per
    /// message.
    pub faults: Option<Arc<ActiveFaults>>,
}

/// Applies any injected fault for this (shard, message) pair. May
/// panic — that is the point — so callers run it under the same
/// `catch_unwind` as the absorb itself.
fn apply_fault<A: ShardAggregate>(ctx: &WorkerCtx<A>, idx: Option<u64>) {
    let (Some(faults), Some(idx)) = (&ctx.faults, idx) else {
        return;
    };
    match faults.action(ctx.shard, idx) {
        None => {}
        Some(FaultAction::Panic) => {
            panic!("injected fault: panic at shard {} message {idx}", ctx.shard)
        }
        Some(FaultAction::Delay(d)) => std::thread::sleep(d),
        Some(FaultAction::Stall) => {
            // Park until the service tears down; deliberately ignores
            // ring close so deadline paths genuinely time out.
            while !faults.stall_released() {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Rebuilds a shard accumulator from its last checkpoint plus a replay
/// of the journal — the state exactly as of the last successfully
/// absorbed message.
fn rebuild<A: ShardAggregate>(
    empty: &A,
    checkpoint: Option<&[u8]>,
    journal: &[Work<A>],
) -> Result<A, ProfileError> {
    let mut acc = match checkpoint {
        Some(bytes) => A::from_checkpoint_bytes(bytes)?,
        None => empty.clone(),
    };
    for work in journal {
        work.absorb_into(&mut acc);
    }
    Ok(acc)
}

/// Marks the shard crashed and closes its ring on any abnormal worker
/// exit — an explicit give-up *or* a panic unwinding the thread (the
/// unsupervised path) — so producers unblock and `snapshot`/`shutdown`
/// surface `WorkerCrashed` instead of hanging on a reply no one will
/// ever publish.
struct CrashGuard<'a, A: ShardAggregate> {
    counters: &'a ShardCounters,
    ring: &'a RingBuffer<Msg<A>>,
    snap: &'a SnapShared<A>,
    armed: bool,
}

impl<A: ShardAggregate> Drop for CrashGuard<'_, A> {
    fn drop(&mut self) {
        if self.armed {
            self.counters.crashed.store(true, Ordering::Release);
            self.ring.close();
            // Drain what the dead shard will never process: abandoned
            // work is counted as dropped. A `try_push` racing `close`
            // may still land an item after an empty drain observation,
            // so sweep until the ring stays empty across two passes.
            loop {
                let mut drained = false;
                while let Some(msg) = self.ring.try_pop() {
                    drained = true;
                    if let Msg::Work(work) = msg {
                        self.counters
                            .dropped
                            .fetch_add(work.len(), Ordering::Relaxed);
                        work.settle();
                    }
                }
                if !drained {
                    break;
                }
            }
            // Wake any snapshot requester so it sees `crashed` and
            // returns `WorkerCrashed` instead of waiting forever.
            self.snap.notify();
        }
    }
}

/// Publishes into the snapshot mailbox if an unanswered request's
/// watermark has been reached. `processed` counts ring positions this
/// worker has fully handled.
///
/// Dense plane (`base` is `None`): a full accumulator clone. Delta
/// plane: the sparse delta since `base` — O(touched rows) — prefixed
/// by any unconsumed chunks swept from abandoned epochs (see
/// [`SnapShared`]'s "why two slots").
fn maybe_publish<A: ShardAggregate>(
    ctx: &WorkerCtx<A>,
    acc: &mut A,
    base: &mut Option<A>,
    processed: u64,
    last_published: &mut u64,
) {
    let snap = &ctx.snap;
    let req = snap.requested.load(Ordering::Acquire);
    if req == *last_published || processed < snap.watermark.load(Ordering::Acquire) {
        return;
    }
    let publication = match base {
        None => Publication::Full(acc.clone()),
        Some(base) => {
            // Sweep both parity slots for abandoned, never-consumed
            // chunks — they are the only copy of their history span.
            let mut chunks: Vec<Vec<u8>> = Vec::with_capacity(1);
            for slot in &snap.slots {
                let mut slot = slot.lock().unwrap_or_else(PoisonError::into_inner);
                if let Some(Publication::Delta(stale)) = slot.take() {
                    chunks.extend(stale);
                }
            }
            // Infallible by construction: the base only ever advances
            // by syncing to the accumulator, so every counter diff is
            // non-negative and the headers always match.
            let chunk = acc
                .extract_delta_bytes(base)
                .expect("delta base is a past state of this accumulator");
            ctx.counters
                .deltas_published
                .fetch_add(1, Ordering::Relaxed);
            ctx.counters
                .delta_bytes
                .fetch_add(chunk.len() as u64, Ordering::Relaxed);
            chunks.push(chunk);
            Publication::Delta(chunks)
        }
    };
    {
        let mut slot = snap.slots[(req & 1) as usize]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *slot = Some(publication);
    }
    snap.published.store(req, Ordering::Release);
    *last_published = req;
    snap.notify();
}

/// The shard worker: pops messages until the ring closes, absorbing
/// under supervision and answering snapshot requests between messages,
/// then sends the final accumulator over `done`.
pub(crate) fn run_worker<A: ShardAggregate>(ctx: WorkerCtx<A>) {
    let mut guard = CrashGuard {
        counters: &ctx.counters,
        ring: &ctx.ring,
        snap: &ctx.snap,
        armed: true,
    };
    let mut acc = ctx.empty.clone();
    // Delta plane: the accumulator state as of the last delta this
    // worker shipped. `extract_delta_bytes` advances it in O(touched).
    let mut base = (ctx.plane == SnapshotPlane::Delta).then(|| ctx.empty.clone());
    let mut checkpoint: Option<Vec<u8>> = None;
    let mut journal: Vec<Work<A>> = Vec::new();
    let mut since_checkpoint = 0u32;
    let mut recoveries_left = ctx.cfg.max_recoveries;
    // Ring positions fully handled; compared against snapshot
    // watermarks. Counts every message kind — Nudges occupy positions
    // too.
    let mut processed = 0u64;
    let mut last_published = 0u64;
    while let Some(msg) = ctx.ring.pop() {
        let work = match msg {
            Msg::Nudge => {
                processed += 1;
                maybe_publish(&ctx, &mut acc, &mut base, processed, &mut last_published);
                continue;
            }
            Msg::Work(work) => work,
        };
        // One fault index per message: a retry of the same message
        // re-evaluates the same index, so one-shot faults stay one-shot.
        let fault_idx = ctx.faults.as_ref().map(|f| f.next_message(ctx.shard));

        if !ctx.cfg.enabled {
            // Unsupervised: let the panic tear the thread down. The
            // crash guard runs during the unwind and the service
            // reports `WorkerCrashed`.
            apply_fault(&ctx, fault_idx);
            work.absorb_into(&mut acc);
            work.settle();
            processed += 1;
            maybe_publish(&ctx, &mut acc, &mut base, processed, &mut last_published);
            continue;
        }

        let mut absorbed = false;
        for _attempt in 0..2 {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                apply_fault(&ctx, fault_idx);
                work.absorb_into(&mut acc);
            }));
            match outcome {
                Ok(()) => {
                    absorbed = true;
                    break;
                }
                Err(_) => {
                    ctx.counters.panics.fetch_add(1, Ordering::Relaxed);
                    if recoveries_left == 0 {
                        // Budget exhausted: the guard marks the shard
                        // crashed and closes the ring. The in-flight
                        // work leaves the pipeline here.
                        work.settle();
                        return;
                    }
                    recoveries_left -= 1;
                    // The panic may have left `acc` half-updated;
                    // rebuild it to the last consistent state.
                    match rebuild(&ctx.empty, checkpoint.as_deref(), &journal) {
                        Ok(rebuilt) => {
                            acc = rebuilt;
                            ctx.counters.recoveries.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            // Cannot restore our own checkpoint: fail
                            // the shard loudly (via the guard) rather
                            // than serve a silently-wrong aggregate.
                            work.settle();
                            return;
                        }
                    }
                }
            }
        }
        work.settle();
        if absorbed {
            journal.push(work);
            since_checkpoint += 1;
            if since_checkpoint >= ctx.cfg.checkpoint_every {
                // On serialization failure keep the journal: recovery
                // replays more but stays exact.
                if let Ok(bytes) = acc.checkpoint_bytes() {
                    checkpoint = Some(bytes);
                    journal.clear();
                    since_checkpoint = 0;
                    ctx.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
                }
            }
        } else {
            // Both attempts panicked: the in-flight message is lost,
            // and `acc` was rebuilt to exclude it — exact accounting.
            ctx.counters
                .lost_to_panics
                .fetch_add(work.len(), Ordering::Relaxed);
        }
        // The position is processed either way (absorbed or dropped
        // with accounting): a snapshot at this watermark must not wait
        // on a message that will never be absorbed.
        processed += 1;
        maybe_publish(&ctx, &mut acc, &mut base, processed, &mut last_published);
    }
    guard.armed = false;
    drop(ctx.done.send(acc));
}
