//! A bounded MPMC queue with backpressure accounting: the buffer
//! between sample producers and per-shard aggregators.
//!
//! Built on `Mutex` + `Condvar` only — the same no-external-deps rule
//! the bench engine's fan-out follows — so the service runs in this
//! offline workspace. Tracks its own high-water mark, which is the
//! queue-depth statistic the ingest layer reports.
//!
//! # Robustness
//!
//! Every lock acquisition recovers from mutex poisoning
//! ([`PoisonError::into_inner`]): the queue state is a plain
//! `VecDeque` plus two flags, which no panic can leave half-updated,
//! so a producer or consumer that dies while holding the lock must not
//! wedge every other thread. The timeout-aware [`push_timeout`] and
//! [`pop_timeout`] variants (`Condvar::wait_timeout`) bound how long
//! any caller can block, which is what the service's
//! `ingest_deadline`/`snapshot_deadline` paths build on.
//!
//! [`push_timeout`]: BoundedQueue::push_timeout
//! [`pop_timeout`]: BoundedQueue::pop_timeout

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// The outcome of a non-blocking push.
#[derive(Debug)]
pub enum TryPushError<T> {
    /// The queue was at capacity; the item is handed back.
    Full(T),
    /// The queue was closed; the item is handed back.
    Closed(T),
}

/// The outcome of a [`BoundedQueue::pop_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum PopTimeout<T> {
    /// An item arrived within the deadline.
    Item(T),
    /// The deadline passed with the queue still empty (and open).
    TimedOut,
    /// The queue is closed and fully drained.
    Closed,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    high_water: usize,
}

/// A blocking bounded queue of `T` with close semantics and a
/// high-water mark.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
                high_water: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Locks the state, recovering from poisoning: a panicking peer
    /// never leaves the `VecDeque` itself inconsistent, so the lock
    /// stays usable for everyone else.
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocking push: waits while the queue is full. Returns the item
    /// back if the queue has been closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.lock();
        while state.items.len() >= self.capacity && !state.closed {
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        state.high_water = state.high_water.max(state.items.len());
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Deadline-bounded push: waits at most `timeout` for space.
    ///
    /// # Errors
    ///
    /// [`TryPushError::Full`] if the deadline passed with the queue
    /// still full, [`TryPushError::Closed`] if the queue was closed;
    /// the item is handed back either way.
    pub fn push_timeout(&self, item: T, timeout: Duration) -> Result<(), TryPushError<T>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        while state.items.len() >= self.capacity && !state.closed {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(TryPushError::Full(item));
            }
            let (guard, wait) = self
                .not_full
                .wait_timeout(state, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
            if wait.timed_out() && state.items.len() >= self.capacity && !state.closed {
                return Err(TryPushError::Full(item));
            }
        }
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        state.items.push_back(item);
        state.high_water = state.high_water.max(state.items.len());
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking push: fails immediately when full or closed. The
    /// lossy (`offer`) ingest path uses this and counts the rejections.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        state.items.push_back(item);
        state.high_water = state.high_water.max(state.items.len());
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop: waits while the queue is empty. Returns `None`
    /// only once the queue is closed *and* drained, so no accepted item
    /// is ever lost.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Deadline-bounded pop: waits at most `timeout` for an item.
    pub fn pop_timeout(&self, timeout: Duration) -> PopTimeout<T> {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return PopTimeout::Item(item);
            }
            if state.closed {
                return PopTimeout::Closed;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return PopTimeout::TimedOut;
            }
            let (guard, _) = self
                .not_empty
                .wait_timeout(state, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
    }

    /// Closes the queue: further pushes fail, pops drain what remains.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`close`](BoundedQueue::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// The fixed capacity this queue was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        self.lock().high_water
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        assert_eq!(q.high_water(), 4);
        assert_eq!(q.capacity(), 4);
        assert_eq!(
            (q.pop(), q.pop(), q.pop(), q.pop()),
            (Some(0), Some(1), Some(2), Some(3))
        );
    }

    #[test]
    fn try_push_reports_full_and_closed() {
        let q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        assert!(matches!(q.try_push(2), Err(TryPushError::Full(2))));
        q.close();
        assert!(matches!(q.try_push(3), Err(TryPushError::Closed(3))));
        // Closed queues still drain.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_blocks_until_space_and_pop_blocks_until_item() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u64).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            for i in 1..100u64 {
                q2.push(i).unwrap();
            }
            q2.close();
        });
        let mut got = Vec::new();
        while let Some(i) = q.pop() {
            got.push(i);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(q.high_water(), 1);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(BoundedQueue::<u64>::new(1));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
        assert!(q.is_empty());
        assert!(q.is_closed());
        assert_eq!(q.push(7), Err(7));
    }

    #[test]
    fn push_timeout_bounds_the_wait_and_hands_the_item_back() {
        let q = BoundedQueue::new(1);
        q.push(1u64).unwrap();
        let start = Instant::now();
        let err = q.push_timeout(2, Duration::from_millis(30)).unwrap_err();
        assert!(matches!(err, TryPushError::Full(2)));
        assert!(start.elapsed() >= Duration::from_millis(30));
        assert!(start.elapsed() < Duration::from_secs(5), "wait is bounded");
        // With space available, the deadline path accepts immediately.
        assert_eq!(q.pop(), Some(1));
        q.push_timeout(3, Duration::from_millis(30)).unwrap();
        q.close();
        assert!(matches!(
            q.push_timeout(4, Duration::from_millis(30)),
            Err(TryPushError::Closed(4))
        ));
    }

    #[test]
    fn pop_timeout_distinguishes_empty_from_closed() {
        let q = BoundedQueue::<u64>::new(2);
        let start = Instant::now();
        assert_eq!(
            q.pop_timeout(Duration::from_millis(20)),
            PopTimeout::TimedOut
        );
        assert!(start.elapsed() >= Duration::from_millis(20));
        q.push(9).unwrap();
        assert_eq!(
            q.pop_timeout(Duration::from_millis(20)),
            PopTimeout::Item(9)
        );
        q.close();
        assert_eq!(q.pop_timeout(Duration::from_millis(20)), PopTimeout::Closed);
    }

    /// Regression: a thread that panics while holding the queue lock
    /// poisons the mutex; every operation must recover instead of
    /// wedging all other producers and consumers.
    #[test]
    fn poisoned_lock_is_recovered() {
        let q = Arc::new(BoundedQueue::new(2));
        q.push(1u64).unwrap();
        let q2 = Arc::clone(&q);
        let poisoner = std::thread::spawn(move || {
            let _guard = q2.state.lock().unwrap();
            panic!("poison the queue mutex");
        });
        assert!(poisoner.join().is_err());
        assert!(q.state.is_poisoned(), "the panic did poison the lock");
        // Every entry point still works.
        q.push(2).unwrap();
        q.try_push(3).unwrap_err(); // full, not wedged
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), PopTimeout::Item(2));
        q.push_timeout(4, Duration::from_millis(5)).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
    }
}
