//! A bounded MPMC queue with backpressure accounting: the buffer
//! between sample producers and per-shard aggregators.
//!
//! Built on `Mutex` + `Condvar` only — the same no-external-deps rule
//! the bench engine's fan-out follows — so the service runs in this
//! offline workspace. Tracks its own high-water mark, which is the
//! queue-depth statistic the ingest layer reports.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// The outcome of a non-blocking push.
#[derive(Debug)]
pub enum TryPushError<T> {
    /// The queue was at capacity; the item is handed back.
    Full(T),
    /// The queue was closed; the item is handed back.
    Closed(T),
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    high_water: usize,
}

/// A blocking bounded queue of `T` with close semantics and a
/// high-water mark.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
                high_water: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Blocking push: waits while the queue is full. Returns the item
    /// back if the queue has been closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue poisoned");
        while state.items.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).expect("queue poisoned");
        }
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        state.high_water = state.high_water.max(state.items.len());
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking push: fails immediately when full or closed. The
    /// lossy (`offer`) ingest path uses this and counts the rejections.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        state.items.push_back(item);
        state.high_water = state.high_water.max(state.items.len());
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop: waits while the queue is empty. Returns `None`
    /// only once the queue is closed *and* drained, so no accepted item
    /// is ever lost.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue: further pushes fail, pops drain what remains.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// The deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        self.state.lock().expect("queue poisoned").high_water
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        assert_eq!(q.high_water(), 4);
        assert_eq!(
            (q.pop(), q.pop(), q.pop(), q.pop()),
            (Some(0), Some(1), Some(2), Some(3))
        );
    }

    #[test]
    fn try_push_reports_full_and_closed() {
        let q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        assert!(matches!(q.try_push(2), Err(TryPushError::Full(2))));
        q.close();
        assert!(matches!(q.try_push(3), Err(TryPushError::Closed(3))));
        // Closed queues still drain.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_blocks_until_space_and_pop_blocks_until_item() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u64).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            for i in 1..100u64 {
                q2.push(i).unwrap();
            }
            q2.close();
        });
        let mut got = Vec::new();
        while let Some(i) = q.pop() {
            got.push(i);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(q.high_water(), 1);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(BoundedQueue::<u64>::new(1));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
        assert!(q.is_empty());
        assert_eq!(q.push(7), Err(7));
    }
}
