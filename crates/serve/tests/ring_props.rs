//! Property tests for the lock-free [`RingBuffer`] and a full-width
//! stress test of the service built on top of it.
//!
//! The ring's contract, exercised over random shapes:
//!
//! * **No loss, no duplication** — every item accepted by a push is
//!   popped exactly once, across any producer/consumer mix.
//! * **Per-producer FIFO** — pops are globally ordered by the dequeue
//!   cursor, so any one consumer's stream sees each producer's items
//!   in push order (a subsequence of an increasing sequence).
//! * **Close-then-drain** — `close` rejects new items but never
//!   discards accepted ones; `pop` returns `None` only once drained.
//! * **Model equivalence** — against a `VecDeque` reference model the
//!   ring agrees on every accept/reject/deliver decision, including
//!   across many wraparounds of the cursors.

use profileme_core::{ProfileDatabase, ProfileMeConfig, Session, WireFormat};
use profileme_serve::{RingBuffer, ServeConfig, ShardedService, TryPushError};
use profileme_workloads as workloads;
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;

/// Pack a producer id and a per-producer sequence number into one item
/// so consumers can check ordering without shared state.
fn tag(producer: u64, seq: u64) -> u64 {
    (producer << 32) | seq
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random producer/consumer/capacity shapes: nothing is lost,
    /// nothing is duplicated, and every consumer sees each producer's
    /// items in push order.
    #[test]
    fn mpmc_is_exactly_once_and_per_producer_fifo(
        producers in 1u64..=4,
        consumers in 1usize..=3,
        per_producer in 64u64..=512,
        cap_bits in 1u32..=5,
    ) {
        let q = Arc::new(RingBuffer::new(1usize << cap_bits));
        let produce: Vec<_> = (0..producers)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for seq in 0..per_producer {
                        q.push(tag(p, seq)).expect("ring open while producing");
                    }
                })
            })
            .collect();
        let consume: Vec<_> = (0..consumers)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        for h in produce {
            h.join().expect("producer finishes");
        }
        q.close();
        let streams: Vec<Vec<u64>> = consume
            .into_iter()
            .map(|h| h.join().expect("consumer finishes"))
            .collect();

        // Per-consumer streams are increasing per producer.
        for stream in &streams {
            let mut last = vec![None::<u64>; producers as usize];
            for &item in stream {
                let (p, seq) = ((item >> 32) as usize, item & 0xffff_ffff);
                if let Some(prev) = last[p] {
                    prop_assert!(
                        seq > prev,
                        "producer {p} reordered: {seq} after {prev}"
                    );
                }
                last[p] = Some(seq);
            }
        }
        // Exactly-once delivery across all consumers.
        let mut all: Vec<u64> = streams.into_iter().flatten().collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..producers)
            .flat_map(|p| (0..per_producer).map(move |s| tag(p, s)))
            .collect();
        prop_assert_eq!(all, expect);
        prop_assert!(q.high_water() <= q.capacity());
    }

    /// Close rejects new pushes with the item handed back, yet every
    /// item accepted before the close drains out in FIFO order.
    #[test]
    fn close_then_drain_keeps_accepted_items(
        capacity in 1usize..=20,
        fill in 0usize..=20,
    ) {
        let q = RingBuffer::new(capacity);
        let mut accepted = Vec::new();
        for i in 0..fill as u64 {
            match q.try_push(i) {
                Ok(()) => accepted.push(i),
                Err(TryPushError::Full(v)) => prop_assert_eq!(v, i),
                Err(TryPushError::Closed(_)) => unreachable!("not closed yet"),
            }
        }
        q.close();
        prop_assert!(matches!(q.try_push(99), Err(TryPushError::Closed(99))));
        prop_assert!(q.push(99).is_err());
        let mut drained = Vec::new();
        while let Some(v) = q.pop() {
            drained.push(v);
        }
        prop_assert_eq!(drained, accepted);
        prop_assert!(q.is_empty());
    }

    /// Single-threaded model check against a bounded `VecDeque`: the
    /// ring and the model agree on every accept/reject and on every
    /// delivered value, through arbitrarily many cursor wraparounds.
    #[test]
    fn ring_agrees_with_a_vecdeque_model(
        cap_bits in 1u32..=3,
        ops in prop::collection::vec(0u8..=3, 1..=400),
    ) {
        let capacity = 1usize << cap_bits;
        let q = RingBuffer::new(capacity);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        for op in ops {
            // 0/1 push (biased even), 2/3 pop.
            if op < 2 {
                let res = q.try_push(next);
                if model.len() < capacity {
                    prop_assert!(res.is_ok(), "ring rejected with space free");
                    model.push_back(next);
                } else {
                    prop_assert!(
                        matches!(res, Err(TryPushError::Full(v)) if v == next),
                        "ring accepted past capacity"
                    );
                }
                next += 1;
            } else {
                prop_assert_eq!(q.try_pop(), model.pop_front());
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.is_empty(), model.is_empty());
        }
        // Drain whatever is left; the tails must agree too.
        q.close();
        while let Some(v) = q.pop() {
            prop_assert_eq!(Some(v), model.pop_front());
        }
        prop_assert!(model.is_empty());
    }
}

/// The capstone stress test: 8 producers hammering 8 shards through
/// shallow rings, with snapshot cycles running concurrently, must
/// still merge byte-identically to single-threaded aggregation — the
/// service-level restatement of exactly-once delivery.
#[test]
fn eight_producers_eight_shards_match_direct_aggregation() {
    let w = workloads::compress(20_000);
    let run = Session::builder(w.program.clone())
        .memory(w.memory.clone())
        .sampling(ProfileMeConfig {
            mean_interval: 48,
            buffer_depth: 8,
            ..ProfileMeConfig::default()
        })
        .build()
        .expect("config is valid")
        .profile_single()
        .expect("workload completes");
    assert!(run.samples.len() > 500, "thin stream");
    let direct = run
        .db
        .encode(WireFormat::Sparse)
        .expect("snapshot serializes");
    let samples = Arc::new(run.samples);

    let svc = Arc::new(
        ShardedService::start(
            ProfileDatabase::new(&w.program, run.db.interval()),
            // Shallow queues: force backpressure + wraparound.
            ServeConfig::builder()
                .shards(8)
                .queue_depth(4)
                .build()
                .expect("config is valid"),
        )
        .expect("service starts"),
    );
    const PRODUCERS: usize = 8;
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let svc = Arc::clone(&svc);
            let samples = Arc::clone(&samples);
            std::thread::spawn(move || {
                for s in samples.iter().skip(p).step_by(PRODUCERS) {
                    svc.ingest(s.clone());
                }
            })
        })
        .collect();

    // Concurrent snapshot cycles: totals must never regress, and each
    // must reflect at most what has been enqueued so far.
    let mut last_total = 0u64;
    for _ in 0..4 {
        let snap = svc.snapshot().expect("snapshot during ingest");
        assert!(
            snap.merged.total_samples >= last_total,
            "snapshot total regressed: {} < {last_total}",
            snap.merged.total_samples
        );
        assert!(snap.merged.total_samples <= snap.stats.enqueued);
        last_total = snap.merged.total_samples;
    }

    for h in producers {
        h.join().expect("producer finishes");
    }
    let svc = Arc::into_inner(svc).expect("all producers dropped their handles");
    let (merged, stats) = svc.shutdown().expect("service drains");
    assert_eq!(stats.dropped, 0, "lossless path never drops");
    assert_eq!(stats.enqueued, samples.len() as u64);
    assert_eq!(
        merged
            .encode(WireFormat::Sparse)
            .expect("snapshot serializes"),
        direct,
        "8 producers x 8 shards diverged from direct aggregation"
    );
}
