//! Crash-recovery tests of the durable profile store: kill the log at
//! an arbitrary byte offset and prove recovery returns **exactly** the
//! acknowledged prefix.
//!
//! The contract under test, end to end:
//!
//! * recovery after a clean close is byte-identical to direct
//!   aggregation of everything appended;
//! * a kill at *any* byte offset — mid-payload, mid-header, or on a
//!   segment boundary — recovers the image plus every record whose
//!   frame survives whole, and nothing else: the recovered bytes equal
//!   the direct aggregation of that exact acknowledged prefix;
//! * a torn record is legal only at the very end of the log; a tear
//!   *followed by later segments* is refused loudly as
//!   [`ProfileError::Store`] rather than silently skipped;
//! * leftovers of a compaction interrupted at any point (temporary
//!   images, undecodable images, superseded segments) are swept on the
//!   next open without losing a record.
//!
//! The tests parse segment files with the documented wire framing
//! (`[len: u32 LE][crc: u32 LE][payload]`) rather than through the
//! store's own scanner, so a framing regression cannot hide itself.

use profileme_core::{
    PairProfileDatabase, PairedConfig, ProfileDatabase, ProfileError, ProfileMeConfig, Session,
};
use profileme_serve::{ProfileStore, ServeConfig, ShardAggregate, ShardedService, StoreConfig};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

struct SingleStream {
    program: profileme_isa::Program,
    samples: Vec<profileme_core::Sample>,
    interval: u64,
}

/// One simulator run shared by every test (the stream is deterministic;
/// producing it is the expensive part).
fn single_stream() -> &'static SingleStream {
    static STREAM: OnceLock<SingleStream> = OnceLock::new();
    STREAM.get_or_init(|| {
        let w = profileme_workloads::ijpeg(400);
        let run = Session::builder(w.program.clone())
            .memory(w.memory.clone())
            .sampling(ProfileMeConfig {
                mean_interval: 32,
                ..Default::default()
            })
            .build()
            .expect("config is valid")
            .profile_single()
            .expect("workload completes");
        assert!(run.samples.len() > 100, "stream too thin to tear");
        SingleStream {
            program: w.program,
            samples: run.samples,
            interval: run.db.interval(),
        }
    })
}

/// A scratch store directory, unique per call, removed by `Drop` so a
/// failing test never poisons the next run.
struct TempStore(PathBuf);

impl TempStore {
    fn new(tag: &str) -> TempStore {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "pm-store-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        TempStore(dir)
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Writes the whole sample stream through a store in `chunk`-sample
/// delta records, exactly the way the service publishes them. Returns
/// the acknowledged-prefix images (`prefixes[k]` = canonical bytes of
/// the empty aggregate plus records `0..k`) and how many records the
/// final on-disk snapshot image covers.
fn write_log(
    dir: &Path,
    segment_bytes: u64,
    compact_every: u64,
    chunk: usize,
) -> (Vec<Vec<u8>>, u64) {
    let s = single_stream();
    let empty = ProfileDatabase::new(&s.program, s.interval);
    let cfg = StoreConfig {
        data_dir: dir.to_path_buf(),
        segment_bytes,
        compact_every,
    };
    let (mut store, recovered) = ProfileStore::open(cfg, empty.clone()).expect("store opens");
    assert_eq!(
        recovered.checkpoint_bytes().unwrap(),
        empty.checkpoint_bytes().unwrap(),
        "a fresh store recovers to the empty aggregate"
    );
    let mut running = empty.clone();
    let mut base = empty;
    let mut prefixes = vec![running.checkpoint_bytes().unwrap()];
    let mut covered = 0u64;
    let mut appended = 0u64;
    for batch in s.samples.chunks(chunk) {
        for sample in batch {
            running.absorb(sample);
        }
        let delta = running
            .extract_delta_bytes(&mut base)
            .expect("delta extracts");
        store.append(&delta).expect("append succeeds");
        appended += 1;
        prefixes.push(running.checkpoint_bytes().unwrap());
        if store.maybe_compact(&running).expect("compaction succeeds") {
            covered = appended;
        }
    }
    store.sync().expect("sync succeeds");
    (prefixes, covered)
}

/// Every WAL segment in `dir`, in sequence order — parsed from the file
/// *names*, independently of the store's own listing.
fn segments(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)
        .expect("store dir lists")
        .map(|e| e.expect("entry reads").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".seg"))
        })
        .collect();
    out.sort();
    out
}

/// Frame ends within one segment file, parsed with the documented
/// framing: each record is `[len: u32 LE][crc: u32 LE][payload]`.
fn frame_ends(bytes: &[u8]) -> Vec<u64> {
    let mut ends = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if bytes.len() - pos - 8 < len {
            break;
        }
        pos += 8 + len;
        ends.push(pos as u64);
    }
    ends
}

/// Simulates a kill at global byte offset `g` over the concatenated
/// segment stream: truncates the segment containing `g` and deletes
/// every later one. Returns how many on-disk records survive whole.
fn kill_at(dir: &Path, g: u64) -> u64 {
    let mut offset = 0u64;
    let mut cut = false;
    let mut survivors = 0u64;
    for path in segments(dir) {
        if cut {
            fs::remove_file(&path).expect("later segment removes");
            continue;
        }
        let bytes = fs::read(&path).expect("segment reads");
        let len = bytes.len() as u64;
        if offset + len <= g {
            survivors += frame_ends(&bytes).len() as u64;
            offset += len;
            continue;
        }
        let local = g - offset;
        let f = fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("segment opens");
        f.set_len(local).expect("segment truncates");
        survivors += frame_ends(&bytes)
            .iter()
            .filter(|&&end| end <= local)
            .count() as u64;
        cut = true;
    }
    survivors
}

/// Total bytes across all segments.
fn log_bytes(dir: &Path) -> u64 {
    segments(dir)
        .iter()
        .map(|p| fs::metadata(p).expect("segment stats").len())
        .sum()
}

/// The core assertion: after a kill at `g`, recovery — both the
/// read-only walk and the repairing open — returns byte-for-byte the
/// direct aggregation of the acknowledged prefix that survived.
fn assert_recovers_exact_prefix(dir: &Path, prefixes: &[Vec<u8>], covered: u64, g: u64) {
    let survivors = kill_at(dir, g);
    let expected = &prefixes[(covered + survivors) as usize];

    // Read-only first: verify/dump must see the same state the
    // repairing open will produce, without mutating anything.
    let (readonly, ro_stats) =
        ProfileStore::<ProfileDatabase>::recover(dir).expect("read-only recovery succeeds");
    assert_eq!(&readonly.checkpoint_bytes().unwrap(), expected);
    assert_eq!(ro_stats.recovered_records, survivors);

    let s = single_stream();
    let empty = ProfileDatabase::new(&s.program, s.interval);
    let (store, recovered) =
        ProfileStore::open(StoreConfig::new(dir), empty.clone()).expect("store reopens");
    assert_eq!(
        &recovered.checkpoint_bytes().unwrap(),
        expected,
        "kill at byte {g}: recovery must equal the acknowledged prefix of {} record(s)",
        covered + survivors
    );
    assert_eq!(store.stats().recovered_records, survivors);
    drop(store);

    // Reopening again is idempotent: the tail was truncated, nothing
    // further is dropped.
    let (store, again) = ProfileStore::open(StoreConfig::new(dir), empty).expect("third open");
    assert_eq!(&again.checkpoint_bytes().unwrap(), expected);
    assert_eq!(store.stats().dropped_tail_bytes, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A kill anywhere in a multi-segment, uncompacted log recovers
    /// exactly the records whose frames survived whole.
    #[test]
    fn kill_anywhere_recovers_the_acknowledged_prefix(
        g_permille in 0u64..=1000,
        segment_bytes in prop_oneof![Just(64u64), Just(256), Just(1024)],
        chunk in prop_oneof![Just(10usize), Just(25)],
    ) {
        let tmp = TempStore::new("prop");
        let (prefixes, covered) = write_log(&tmp.0, segment_bytes, 0, chunk);
        prop_assert_eq!(covered, 0, "compaction is off in this case");
        let total = log_bytes(&tmp.0);
        let g = total * g_permille / 1000;
        assert_recovers_exact_prefix(&tmp.0, &prefixes, covered, g);
    }

    /// The same exactness holds *through* compactions: the surviving
    /// image supplies the compacted prefix and the cut log the rest.
    #[test]
    fn kill_anywhere_after_compactions_stays_prefix_exact(
        g_permille in 0u64..=1000,
        compact_every in prop_oneof![Just(3u64), Just(7)],
    ) {
        let tmp = TempStore::new("compact");
        let (prefixes, covered) = write_log(&tmp.0, 512, compact_every, 20);
        prop_assert!(covered > 0, "the cadence must have fired");
        let total = log_bytes(&tmp.0);
        let g = total * g_permille / 1000;
        assert_recovers_exact_prefix(&tmp.0, &prefixes, covered, g);
    }
}

/// Deterministic edge cuts: mid-payload, mid-header, and exactly on a
/// segment boundary.
#[test]
fn edge_offset_kills_are_exact() {
    // One big segment: cut 2 bytes into the final record's payload,
    // then 4 bytes into a mid-log record header.
    let tmp = TempStore::new("edges");
    let (prefixes, covered) = write_log(&tmp.0, u64::MAX, 0, 15);
    let segs = segments(&tmp.0);
    assert_eq!(segs.len(), 1, "u64::MAX segment target never rotates");
    let ends = frame_ends(&fs::read(&segs[0]).unwrap());
    assert!(ends.len() >= 4);
    assert_recovers_exact_prefix(&tmp.0, &prefixes, covered, ends[ends.len() - 1] - 2);

    let tmp = TempStore::new("midheader");
    let (prefixes, covered) = write_log(&tmp.0, u64::MAX, 0, 15);
    let segs = segments(&tmp.0);
    let ends = frame_ends(&fs::read(&segs[0]).unwrap());
    let mid = ends.len() / 2;
    assert_recovers_exact_prefix(&tmp.0, &prefixes, covered, ends[mid] + 4);

    // Small segments: cut exactly on the first segment's end — every
    // record in it survives, every later segment is gone.
    let tmp = TempStore::new("boundary");
    let (prefixes, covered) = write_log(&tmp.0, 128, 0, 10);
    let segs = segments(&tmp.0);
    assert!(segs.len() >= 3, "the log must have rotated");
    let first = fs::metadata(&segs[0]).unwrap().len();
    assert_recovers_exact_prefix(&tmp.0, &prefixes, covered, first);
}

/// A corrupt record in a *non-final* segment is refused outright:
/// skipping an interior record would corrupt every aggregate after it.
#[test]
fn interior_tear_is_refused_not_skipped() {
    let tmp = TempStore::new("interior");
    write_log(&tmp.0, 128, 0, 10);
    let segs = segments(&tmp.0);
    assert!(segs.len() >= 2);
    // Flip one payload byte in the first segment: its CRC now fails
    // while later segments still exist.
    let mut bytes = fs::read(&segs[0]).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    fs::write(&segs[0], &bytes).unwrap();

    let err = ProfileStore::<ProfileDatabase>::recover(&tmp.0)
        .map(|(db, _)| db.total_samples)
        .expect_err("interior tear must fail recovery");
    assert!(
        matches!(&err, ProfileError::Store { reason, .. } if reason.contains("later segments")),
        "unexpected error: {err}"
    );
    // The refusal names the torn segment and the byte offset of the
    // tear (the end of the last intact record).
    if let ProfileError::Store { path, offset, .. } = &err {
        assert_eq!(path.as_deref(), Some(segs[0].as_path()));
        assert!(offset.is_some(), "tear offset must be reported");
        assert!(offset.unwrap() < fs::metadata(&segs[0]).unwrap().len());
    }
    let s = single_stream();
    let empty = ProfileDatabase::new(&s.program, s.interval);
    assert!(ProfileStore::open(StoreConfig::new(&tmp.0), empty).is_err());
}

/// Debris from a compaction interrupted at any point — a temporary
/// image, an undecodable image with the final name, a superseded older
/// image — is swept on open without losing a record.
#[test]
fn interrupted_compaction_debris_is_swept() {
    let tmp = TempStore::new("debris");
    let (prefixes, covered) = write_log(&tmp.0, 512, 5, 20);
    assert!(covered > 0);
    let tmp_img = tmp.0.join("snap-00000099.img.tmp");
    fs::write(&tmp_img, b"half-written").unwrap();
    // Newer than the real image but garbage: recovery must fall back.
    let junk_img = tmp.0.join("snap-00009999.img");
    fs::write(&junk_img, b"not a snapshot").unwrap();
    // Older than the real image: superseded, must be removed.
    let old_img = tmp.0.join("snap-00000000.img");
    fs::write(&old_img, b"stale").unwrap();

    let s = single_stream();
    let empty = ProfileDatabase::new(&s.program, s.interval);
    let (_store, recovered) =
        ProfileStore::open(StoreConfig::new(&tmp.0), empty).expect("store reopens over debris");
    assert_eq!(
        &recovered.checkpoint_bytes().unwrap(),
        prefixes.last().unwrap(),
        "debris must not change the recovered state"
    );
    assert!(!tmp_img.exists(), "temporary image swept");
    assert!(!junk_img.exists(), "undecodable image swept");
    assert!(!old_img.exists(), "superseded image swept");
}

/// The full service loop: a `ShardedService` with a `data_dir`
/// persists across restarts — the second process picks up exactly
/// where the first stopped, and the combined view is byte-identical
/// to direct aggregation of both runs' streams.
#[test]
fn service_restart_recovers_history() {
    let s = single_stream();
    let tmp = TempStore::new("svc");
    let half = s.samples.len() / 2;
    let config = || {
        ServeConfig::builder()
            .shards(2)
            .data_dir(&tmp.0)
            .compact_every(4)
            .build()
            .expect("config is valid")
    };
    let empty = || ProfileDatabase::new(&s.program, s.interval);
    let mut direct = empty();
    for sample in &s.samples {
        direct.absorb(sample);
    }

    // First run: the front half, snapshot cycles interleaved.
    let svc = ShardedService::start(empty(), config()).expect("first run starts");
    for batch in s.samples[..half].chunks(16) {
        svc.ingest_batch(batch.to_vec());
        svc.snapshot().expect("snapshot cycles");
    }
    let (merged1, stats1) = svc.shutdown().expect("first run drains");
    assert_eq!(stats1.lost(), 0);
    assert_eq!(merged1.total_samples as usize, half);

    // Second run: recovery hands back run one's aggregate before a
    // single new sample arrives, then the back half lands on top.
    let svc = ShardedService::start(empty(), config()).expect("second run starts");
    let recovered = svc
        .view_merged()
        .expect("a stored service exposes its view");
    assert_eq!(
        recovered.checkpoint_bytes().unwrap(),
        merged1.checkpoint_bytes().unwrap(),
        "restart must recover run one byte-identically"
    );
    for batch in s.samples[half..].chunks(16) {
        svc.ingest_batch(batch.to_vec());
    }
    svc.snapshot().expect("snapshot publishes the back half");
    let view = svc.view_merged().expect("view");
    assert_eq!(
        view.checkpoint_bytes().unwrap(),
        direct.checkpoint_bytes().unwrap(),
        "history + this run must equal direct aggregation of the whole stream"
    );
    let (merged2, stats2) = svc.shutdown().expect("second run drains");
    assert_eq!(stats2.lost(), 0);
    assert_eq!(merged2.total_samples as usize, s.samples.len() - half);

    // Third run: no new ingest, the full history is simply there.
    let svc = ShardedService::start(empty(), config()).expect("third run starts");
    assert_eq!(
        svc.view_merged().expect("view").checkpoint_bytes().unwrap(),
        direct.checkpoint_bytes().unwrap()
    );
    svc.shutdown().expect("third run drains");
}

/// The paired-sample lineage rides the same store: a `PMP1` image plus
/// pair deltas recover byte-identically too.
#[test]
fn pair_store_round_trips() {
    let w = profileme_workloads::ijpeg(400);
    let run = Session::builder(w.program.clone())
        .memory(w.memory)
        .paired_sampling(PairedConfig {
            mean_major_interval: 32,
            window: 16,
            ..PairedConfig::default()
        })
        .build()
        .expect("config is valid")
        .profile_paired()
        .expect("workload completes");
    assert!(run.pairs.len() > 20, "stream too thin");

    let tmp = TempStore::new("pair");
    let empty = PairProfileDatabase::new(&w.program, run.db.interval(), run.db.window());
    let (mut store, _) =
        ProfileStore::open(StoreConfig::new(&tmp.0), empty.clone()).expect("store opens");
    let mut running = empty.clone();
    let mut base = empty.clone();
    for batch in run.pairs.chunks(10) {
        for pair in batch {
            running.absorb(pair);
        }
        let delta = running
            .extract_delta_bytes(&mut base)
            .expect("delta extracts");
        store.append(&delta).expect("append succeeds");
    }
    store.sync().expect("sync succeeds");
    drop(store);

    let (_store, recovered) =
        ProfileStore::open(StoreConfig::new(&tmp.0), empty).expect("store reopens");
    assert_eq!(
        recovered.checkpoint_bytes().unwrap(),
        running.checkpoint_bytes().unwrap(),
        "pair store recovery must be byte-identical"
    );
    assert_eq!(recovered.total_pairs, run.db.total_pairs);
}
