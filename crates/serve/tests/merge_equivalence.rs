//! The service's determinism contract, end to end: replaying a real
//! profiling run's sample stream through `ShardedService` produces a
//! merged database *byte-identical* to single-threaded aggregation —
//! for every shard count, for both database kinds, and regardless of
//! how many producer threads feed the queues.

use profileme_core::{
    PairProfileDatabase, PairedConfig, ProfileDatabase, ProfileMeConfig, Session, WireFormat,
};
use profileme_serve::{ServeConfig, ShardedService};
use profileme_workloads as workloads;
use std::sync::Arc;

const SHARDS: [usize; 4] = [1, 2, 4, 8];

fn single_workloads() -> Vec<workloads::Workload> {
    vec![workloads::compress(20_000), workloads::li(8_000)]
}

/// Shard count never changes the merged single-instruction profile.
#[test]
fn sharded_single_profiles_match_direct_for_all_shard_counts() {
    for w in single_workloads() {
        let run = Session::builder(w.program.clone())
            .memory(w.memory.clone())
            .sampling(ProfileMeConfig {
                mean_interval: 48,
                buffer_depth: 8,
                ..ProfileMeConfig::default()
            })
            .build()
            .expect("config is valid")
            .profile_single()
            .expect("workload completes");
        assert!(run.samples.len() > 100, "{}: thin stream", w.name);
        let direct = run
            .db
            .encode(WireFormat::Sparse)
            .expect("snapshot serializes");
        for shards in SHARDS {
            let svc = ShardedService::start(
                ProfileDatabase::new(&w.program, run.db.interval()),
                ServeConfig::builder()
                    .shards(shards)
                    .build()
                    .expect("config is valid"),
            )
            .expect("service starts");
            for s in &run.samples {
                svc.ingest(s.clone());
            }
            let (merged, stats) = svc.shutdown().expect("service drains");
            assert_eq!(stats.dropped, 0, "lossless path never drops");
            assert_eq!(stats.enqueued, run.samples.len() as u64);
            assert_eq!(
                merged
                    .encode(WireFormat::Sparse)
                    .expect("snapshot serializes"),
                direct,
                "{} diverged at {shards} shard(s)",
                w.name
            );
        }
    }
}

/// The same contract holds for paired-sample aggregation.
#[test]
fn sharded_paired_profiles_match_direct_for_all_shard_counts() {
    for w in [workloads::compress(15_000), workloads::go(600)] {
        let run = Session::builder(w.program.clone())
            .memory(w.memory.clone())
            .paired_sampling(PairedConfig {
                mean_major_interval: 48,
                window: 64,
                buffer_depth: 4,
                ..PairedConfig::default()
            })
            .build()
            .expect("config is valid")
            .profile_paired()
            .expect("workload completes");
        assert!(run.pairs.len() > 50, "{}: thin stream", w.name);
        let direct = run
            .db
            .encode(WireFormat::Sparse)
            .expect("snapshot serializes");
        for shards in SHARDS {
            let svc = ShardedService::start(
                PairProfileDatabase::new(&w.program, run.db.interval(), run.db.window()),
                ServeConfig::builder()
                    .shards(shards)
                    .build()
                    .expect("config is valid"),
            )
            .expect("service starts");
            svc.ingest_batch(run.pairs.clone());
            let (merged, _) = svc.shutdown().expect("service drains");
            assert_eq!(
                merged
                    .encode(WireFormat::Sparse)
                    .expect("snapshot serializes"),
                direct,
                "{} diverged at {shards} shard(s)",
                w.name
            );
        }
    }
}

/// Many producer threads racing onto the same service still converge to
/// the exact single-threaded aggregation: absorb order varies run to
/// run, the merged bytes never do.
#[test]
fn concurrent_producers_match_direct_aggregation() {
    let w = workloads::vortex(15_000);
    let run = Session::builder(w.program.clone())
        .memory(w.memory.clone())
        .sampling(ProfileMeConfig {
            mean_interval: 48,
            buffer_depth: 8,
            ..ProfileMeConfig::default()
        })
        .build()
        .expect("config is valid")
        .profile_single()
        .expect("workload completes");
    let direct = run
        .db
        .encode(WireFormat::Sparse)
        .expect("snapshot serializes");
    let samples = Arc::new(run.samples);
    for producers in [2usize, 5] {
        let svc = Arc::new(
            ShardedService::start(
                ProfileDatabase::new(&w.program, run.db.interval()),
                // Shallow queues: exercise backpressure blocking.
                ServeConfig::builder()
                    .shards(4)
                    .queue_depth(8)
                    .build()
                    .expect("config is valid"),
            )
            .expect("service starts"),
        );
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let svc = Arc::clone(&svc);
                let samples = Arc::clone(&samples);
                std::thread::spawn(move || {
                    // Interleave producers sample-by-sample across the
                    // whole stream so every queue sees contention.
                    for s in samples.iter().skip(p).step_by(producers) {
                        svc.ingest(s.clone());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("producer finishes");
        }
        let svc = Arc::into_inner(svc).expect("all producers dropped their handles");
        let (merged, stats) = svc.shutdown().expect("service drains");
        assert_eq!(stats.dropped, 0);
        assert_eq!(
            merged
                .encode(WireFormat::Sparse)
                .expect("snapshot serializes"),
            direct,
            "diverged with {producers} producers"
        );
    }
}

/// Snapshots mid-stream never disturb the final result, and their
/// interval deltas recompose to the whole.
#[test]
fn interval_deltas_recompose_to_the_final_profile() {
    let w = workloads::compress(20_000);
    let run = Session::builder(w.program.clone())
        .memory(w.memory.clone())
        .sampling(ProfileMeConfig {
            mean_interval: 48,
            buffer_depth: 8,
            ..ProfileMeConfig::default()
        })
        .build()
        .expect("config is valid")
        .profile_single()
        .expect("workload completes");
    let svc = ShardedService::start(
        ProfileDatabase::new(&w.program, run.db.interval()),
        ServeConfig::default(),
    )
    .expect("service starts");
    let chunk = (run.samples.len() / 5).max(1);
    let mut delta_samples = 0;
    let mut previous: Option<ProfileDatabase> = None;
    for batch in run.samples.chunks(chunk) {
        svc.ingest_batch(batch.to_vec());
        let snap = svc.snapshot().expect("snapshot merges");
        let delta = match &previous {
            None => snap.merged.clone(),
            Some(prev) => snap.merged.delta_since(prev).expect("monotone stream"),
        };
        delta_samples += delta.total_samples;
        previous = Some(snap.merged);
    }
    let (merged, stats) = svc.shutdown().expect("service drains");
    assert_eq!(stats.snapshots as usize, run.samples.len().div_ceil(chunk));
    assert_eq!(delta_samples, merged.total_samples);
    assert_eq!(
        merged
            .encode(WireFormat::Sparse)
            .expect("snapshot serializes"),
        run.db
            .encode(WireFormat::Sparse)
            .expect("snapshot serializes"),
        "mid-stream snapshots perturbed the final aggregation"
    );
}
