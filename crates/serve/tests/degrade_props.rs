//! Property tests of the overload machinery the fleet layer leans on:
//! the [`OverloadController`] ladder, the [`RetryPolicy`] backoff, and
//! the per-tenant [`TokenBucket`].
//!
//! The properties, over arbitrary pressure traces and seeds:
//!
//! * the ladder moves one rung at a time, downshifts only at or above
//!   the high-water mark, and upshifts only after `cooldown`
//!   *consecutive* observations at or below the low-water mark — so a
//!   pressure trace oscillating around the watermarks cannot make the
//!   ladder thrash;
//! * backoff sleeps are deterministic per (seed, attempt, salt) and
//!   never exceed `min(cap, base·2^attempt)`;
//! * a token bucket never exceeds its burst, its deficit is monotone
//!   under consumption, and refills are deterministic in the clock.

use profileme_serve::{
    DegradeConfig, DegradeLevel, OverloadController, RetryPolicy, TenantQuota, TokenBucket,
};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replays an arbitrary pressure trace and checks every ladder
    /// transition against the hysteresis contract.
    #[test]
    fn ladder_moves_are_justified_and_never_oscillate(
        fills in proptest::collection::vec(0u8..=100, 1..200),
        cooldown in 1u32..6,
    ) {
        let cfg = DegradeConfig { cooldown, ..DegradeConfig::default() };
        let c = OverloadController::new(cfg);
        let mut level = DegradeLevel::Full;
        let mut calm_streak = 0u32;
        for &fill in &fills {
            let next = c.observe(fill);
            let (was, now) = (level.as_u8(), next.as_u8());
            prop_assert!(
                now.abs_diff(was) <= 1,
                "ladder jumped {was} -> {now} on fill {fill}"
            );
            if now > was {
                prop_assert!(
                    fill >= cfg.high_water_pct,
                    "downshift below the high-water mark (fill {fill})"
                );
            }
            if now < was {
                prop_assert!(
                    fill <= cfg.low_water_pct,
                    "upshift above the low-water mark (fill {fill})"
                );
                prop_assert!(
                    calm_streak + 1 >= cooldown,
                    "upshift after only {calm_streak} calm observations \
                     (cooldown {cooldown}) — the ladder oscillated"
                );
            }
            // Mirror the controller's calm bookkeeping: only
            // below-low-water observations (while degraded) extend the
            // streak, and any shift resets it.
            calm_streak = if fill <= cfg.low_water_pct && now != 0 && now == was {
                calm_streak + 1
            } else {
                0
            };
            level = next;
        }
        let (down, up, _, _) = c.counters();
        prop_assert!(up <= down, "more upshifts than downshifts");
        prop_assert_eq!(level.as_u8(), (down - up) as u8, "counters track the level");
    }

    /// A trace that stays strictly between the watermarks never moves
    /// the ladder at all.
    #[test]
    fn midband_pressure_holds_the_level(
        fills in proptest::collection::vec(26u8..75, 1..100),
    ) {
        let c = OverloadController::new(DegradeConfig::default());
        for &fill in &fills {
            prop_assert_eq!(c.observe(fill), DegradeLevel::Full);
        }
        prop_assert_eq!(c.counters(), (0, 0, 0, 0));
    }

    /// Backoff is deterministic and bounded by `min(cap, base·2^i)`
    /// for every seed, attempt, and salt.
    #[test]
    fn backoff_is_deterministic_and_within_jitter_bounds(
        seed in any::<u64>(),
        salt in any::<u64>(),
        base_us in 1u64..5_000,
        cap_ms in 1u64..50,
    ) {
        let p = RetryPolicy {
            max_retries: 16,
            base: Duration::from_micros(base_us),
            cap: Duration::from_millis(cap_ms),
            seed,
        };
        for attempt in 0..16u32 {
            let d = p.backoff(attempt, salt);
            prop_assert_eq!(d, p.backoff(attempt, salt), "same inputs, same sleep");
            let ceiling = p.base.saturating_mul(1u32 << attempt.min(20)).min(p.cap);
            prop_assert!(
                d <= ceiling,
                "attempt {attempt}: slept {d:?}, ceiling {ceiling:?}"
            );
        }
    }

    /// The token bucket: capped at burst, deterministic in the clock,
    /// deficit monotone under consumption.
    #[test]
    fn token_bucket_is_capped_monotone_and_deterministic(
        rate in 1u64..1_000_000,
        burst in 1u64..1_000_000,
        takes in proptest::collection::vec(0u64..10_000, 0..50),
        advance_nanos in 0u64..2_000_000_000,
    ) {
        let quota = TenantQuota { rate_per_sec: rate, burst, queue_share: 1 };
        let mut bucket = TokenBucket::new(quota, 0);
        prop_assert_eq!(bucket.tokens(), burst, "starts full");
        prop_assert_eq!(bucket.deficit_pct(), 0);

        let mut previous_deficit = 0u8;
        for &n in &takes {
            bucket.take(n);
            let deficit = bucket.deficit_pct();
            prop_assert!(deficit >= previous_deficit, "deficit shrank without a refill");
            prop_assert!(deficit <= 100);
            previous_deficit = deficit;
        }

        // Refill never overflows the burst, and an identical twin
        // driven by the same clock lands in the same state.
        let mut twin = TokenBucket::new(quota, 0);
        for &n in &takes {
            twin.take(n);
        }
        bucket.refill(advance_nanos);
        twin.refill(advance_nanos);
        prop_assert!(bucket.tokens() <= burst, "refill overflowed the burst");
        prop_assert_eq!(bucket.tokens(), twin.tokens(), "refill is deterministic");
        // A long enough quiet period always restores the full burst.
        bucket.refill(u64::MAX / 2);
        prop_assert_eq!(bucket.tokens(), burst);
        prop_assert_eq!(bucket.deficit_pct(), 0);
    }
}
