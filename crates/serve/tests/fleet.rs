//! Multi-tenant fleet contracts, end to end:
//!
//! * **Fairness under overload** — a tenant driving multiples of its
//!   quota walks its own Full→Sampled→Shed ladder with exact
//!   per-tenant accounting, while every tenant inside its quota stays
//!   at full fidelity and its view remains **byte-identical** to
//!   direct single-threaded aggregation of its stream.
//! * **Tenant-keyed aggregate** — `Tenanted` checkpoints round-trip
//!   (including the pending touched set, so a worker crash between an
//!   absorb and the next delta extraction loses nothing), and its
//!   deltas apply cleanly onto an empty base.
//! * **Epoch ring** — retained snapshots answer time-windowed
//!   per-tenant deltas (`earlier ⊕ window == later`, byte for byte)
//!   and evict oldest-first.
//! * **TCP front-end** — a producer client survives a server stop and
//!   restart via retry/backoff, and no acknowledged sample is lost
//!   across the restart (the durable store carries acked history).

use profileme_core::{ProfileDatabase, ProfileMeConfig, Sample, Session, WireFormat};
use profileme_serve::{
    ClientConfig, DegradeLevel, FleetClient, FleetConfig, FleetServer, FleetService, ProfileStore,
    RetryPolicy, ServeConfig, ShardAggregate, TenantId, TenantQuota, Tenanted,
};
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

struct Stream {
    program: profileme_isa::Program,
    samples: Vec<Sample>,
    interval: u64,
}

/// One deterministic profiling run shared by every test.
fn stream() -> &'static Stream {
    static STREAM: OnceLock<Stream> = OnceLock::new();
    STREAM.get_or_init(|| {
        let w = profileme_workloads::ijpeg(1200);
        let run = Session::builder(w.program.clone())
            .memory(w.memory.clone())
            .sampling(ProfileMeConfig {
                mean_interval: 8,
                ..Default::default()
            })
            .build()
            .expect("config is valid")
            .profile_single()
            .expect("workload completes");
        assert!(run.samples.len() > 440, "stream too thin for fleet tests");
        Stream {
            program: w.program,
            interval: run.db.interval(),
            samples: run.samples,
        }
    })
}

fn proto() -> ProfileDatabase {
    let s = stream();
    ProfileDatabase::new(&s.program, s.interval)
}

fn direct(samples: &[Sample]) -> ProfileDatabase {
    let mut db = proto();
    for sample in samples {
        ShardAggregate::absorb(&mut db, sample);
    }
    db
}

fn encoded(db: &ProfileDatabase) -> Vec<u8> {
    db.encode(WireFormat::Sparse).expect("snapshot serializes")
}

/// A quota so generous the test can never trip it.
fn unmetered() -> TenantQuota {
    TenantQuota {
        rate_per_sec: u64::MAX / 4,
        burst: u64::MAX / 4,
        queue_share: u64::MAX / 4,
    }
}

/// A quota the noisy tenant exhausts within the test: the bucket holds
/// `burst` tokens and refills slowly enough (relative to a
/// milliseconds-long test) that deficit pressure is driven by
/// consumption alone.
fn tight(burst: u64) -> TenantQuota {
    TenantQuota {
        rate_per_sec: 1,
        burst,
        queue_share: u64::MAX / 4,
    }
}

fn fleet_config(noisy_burst: u64) -> FleetConfig {
    FleetConfig {
        tenants: vec![
            (TenantId(0), unmetered()),
            (TenantId(1), unmetered()),
            (TenantId(2), tight(noisy_burst)),
        ],
        epoch_retain: 8,
    }
}

/// Drives two victims at a trickle and one noisy tenant at ≥4× its
/// burst, then asserts the fairness contract on the final state.
fn assert_fair(svc: FleetService<ProfileDatabase>, chaos: bool) {
    let s = stream();
    let victim_a = &s.samples[..120];
    let victim_b = &s.samples[120..240];
    let noisy = &s.samples[240..];
    assert!(noisy.len() as u64 >= 4 * 40, "need ≥4× the noisy burst");

    // Interleave so the noisy tenant's pressure builds while victims
    // keep arriving — the scenario fairness must survive.
    let iters = [
        victim_a.chunks(12).collect::<Vec<_>>(),
        victim_b.chunks(12).collect::<Vec<_>>(),
        noisy.chunks(12).collect::<Vec<_>>(),
    ];
    let rounds = iters.iter().map(Vec::len).max().unwrap_or(0);
    for round in 0..rounds {
        for (tenant, chunks) in iters.iter().enumerate() {
            if let Some(chunk) = chunks.get(round) {
                svc.ingest_batch(TenantId(tenant as u32), chunk.to_vec())
                    .expect("tenant is registered");
            }
        }
    }

    assert_eq!(
        svc.tenant_level(TenantId(0)).unwrap(),
        DegradeLevel::Full,
        "victim A never degrades"
    );
    assert_eq!(svc.tenant_level(TenantId(1)).unwrap(), DegradeLevel::Full);
    assert!(
        svc.tenant_level(TenantId(2)).unwrap() > DegradeLevel::Full,
        "the noisy tenant must have walked its ladder down"
    );

    let (merged, stats) = svc.shutdown().expect("fleet drains");

    // Exact accounting, per tenant and in total.
    for t in &stats.tenants {
        assert_eq!(
            t.offered,
            t.accepted + t.thinned + t.shed,
            "tenant-{} accounting is inexact: {t:?}",
            t.tenant
        );
        assert_eq!(t.inflight, 0, "tenant-{} credit not settled", t.tenant);
    }
    let (a, b, n) = (&stats.tenants[0], &stats.tenants[1], &stats.tenants[2]);
    assert_eq!((a.thinned, a.shed, a.level), (0, 0, 0), "victim A lossless");
    assert_eq!((b.thinned, b.shed, b.level), (0, 0, 0), "victim B lossless");
    assert!(n.thinned > 0, "noisy tenant was thinned: {n:?}");
    assert!(n.shed > 0, "noisy tenant was shed: {n:?}");
    assert_eq!(
        stats.thinned + stats.shed,
        stats
            .tenants
            .iter()
            .map(|t| t.thinned + t.shed)
            .sum::<u64>(),
        "per-tenant losses sum to the fleet totals"
    );
    assert_eq!(
        stats.offered,
        stats.tenants.iter().map(|t| t.offered).sum::<u64>()
    );
    assert_eq!(
        stats.service.enqueued, stats.accepted,
        "everything admitted reached a shard ring"
    );
    assert_eq!(stats.service.dropped, 0, "rings never overflowed");
    if chaos {
        assert!(stats.service.worker_panics > 0, "the fault plan fired");
        assert_eq!(
            stats.service.workers_recovered, stats.service.worker_panics,
            "every panic was recovered"
        );
        assert_eq!(stats.service.lost_to_panics, 0, "recovery was lossless");
    }

    // The fairness tentpole: victims' views are byte-identical to
    // direct aggregation of their own streams, overload or not.
    assert_eq!(
        encoded(merged.tenant(TenantId(0)).expect("victim A present")),
        encoded(&direct(victim_a)),
        "victim A's view diverged from direct aggregation"
    );
    assert_eq!(
        encoded(merged.tenant(TenantId(1)).expect("victim B present")),
        encoded(&direct(victim_b)),
        "victim B's view diverged from direct aggregation"
    );
    // The noisy tenant's view holds exactly what was admitted.
    let noisy_view = merged.tenant(TenantId(2)).expect("noisy present");
    assert_eq!(noisy_view.total_samples, n.accepted);
}

#[test]
fn noisy_tenant_degrades_alone_with_exact_accounting() {
    let svc = FleetService::start(
        proto(),
        ServeConfig::builder().shards(2).build().unwrap(),
        fleet_config(40),
    )
    .expect("fleet starts");
    assert_fair(svc, false);
}

#[cfg(feature = "fault-injection")]
#[test]
fn fairness_survives_worker_panics_and_delays() {
    use profileme_serve::FaultPlan;
    // One transient panic plus a delayed message: supervision recovers
    // the worker from checkpoint + journal, so the fairness and
    // byte-identity assertions must hold unchanged.
    let plan = FaultPlan::parse("panic:nth=3; delay:nth=5:ms=10").expect("plan parses");
    let svc = FleetService::start_with_faults(
        proto(),
        ServeConfig::builder().shards(2).build().unwrap(),
        fleet_config(40),
        plan,
    )
    .expect("fleet starts");
    assert_fair(svc, true);
}

#[test]
fn unregistered_tenants_and_bad_configs_are_rejected() {
    let svc = FleetService::start(
        proto(),
        ServeConfig::builder().shards(1).build().unwrap(),
        FleetConfig::uniform(1, TenantQuota::default()),
    )
    .expect("fleet starts");
    assert!(svc.ingest_batch(TenantId(9), Vec::new()).is_err());
    drop(svc.shutdown());

    let empty = FleetConfig::default();
    assert!(empty.validate().is_err(), "no tenants is rejected");
    let dup = FleetConfig {
        tenants: vec![
            (TenantId(1), TenantQuota::default()),
            (TenantId(1), TenantQuota::default()),
        ],
        epoch_retain: 2,
    };
    assert!(dup.validate().is_err(), "duplicate ids are rejected");
    let zero = FleetConfig {
        tenants: vec![(
            TenantId(0),
            TenantQuota {
                rate_per_sec: 0,
                ..TenantQuota::default()
            },
        )],
        epoch_retain: 2,
    };
    assert!(zero.validate().is_err(), "a zero rate is rejected");
}

#[test]
fn tenanted_checkpoint_roundtrips_with_pending_touched_set() {
    let s = stream();
    let mut agg = Tenanted::new(proto());
    for (i, sample) in s.samples.iter().take(90).enumerate() {
        let item = (TenantId((i % 3) as u32), sample.clone());
        ShardAggregate::absorb(&mut agg, &item);
    }

    let bytes = agg.checkpoint_bytes().expect("checkpoint serializes");
    let mut restored =
        Tenanted::<ProfileDatabase>::from_checkpoint_bytes(&bytes).expect("checkpoint decodes");
    assert_eq!(restored.len(), agg.len());
    for (id, view) in agg.tenants() {
        let twin = restored.tenant(id).expect("tenant survives the roundtrip");
        assert_eq!(encoded(view), encoded(twin), "{id} view diverged");
    }

    // The touched set is part of the checkpoint: a delta extracted
    // after restore must match one extracted from the original, so a
    // worker rebuilt between absorb and extraction publishes the same
    // delta it would have published without the crash.
    let mut agg2 = agg.clone();
    let mut base_a = Tenanted::new(proto());
    let mut base_b = Tenanted::new(proto());
    let from_original = agg2.extract_delta_bytes(&mut base_a).expect("delta");
    let from_restored = restored.extract_delta_bytes(&mut base_b).expect("delta");
    assert_eq!(
        from_original, from_restored,
        "restored touched set lost a pending delta span"
    );

    // Applying that delta onto an empty aggregate reproduces every view.
    let mut applied = Tenanted::new(proto());
    applied
        .apply_delta_bytes(&from_original)
        .expect("delta applies");
    for (id, view) in agg.tenants() {
        assert_eq!(
            encoded(view),
            encoded(applied.tenant(id).expect("tenant materialized")),
            "{id} view diverged after delta apply"
        );
    }
}

#[test]
fn epoch_ring_answers_tenant_windows_and_evicts_oldest() {
    let s = stream();
    let first = &s.samples[..100];
    let second = &s.samples[100..200];
    let svc = FleetService::start(
        proto(),
        ServeConfig::builder().shards(2).build().unwrap(),
        FleetConfig {
            tenants: vec![(TenantId(0), unmetered()), (TenantId(1), unmetered())],
            epoch_retain: 2,
        },
    )
    .expect("fleet starts");

    svc.ingest_batch(TenantId(0), first.to_vec()).unwrap();
    let s1 = svc.snapshot().expect("snapshot").seq;
    svc.ingest_batch(TenantId(0), second.to_vec()).unwrap();
    svc.ingest_batch(TenantId(1), first.to_vec()).unwrap();
    let s2 = svc.snapshot().expect("snapshot").seq;
    assert_eq!(svc.epoch_seqs(), vec![s1, s2]);

    // earlier ⊕ window == later, byte for byte.
    let window = svc
        .tenant_window(TenantId(0), s1, s2)
        .expect("epochs consistent")
        .expect("both epochs retained");
    assert_eq!(window.total_samples, second.len() as u64);
    let earlier = svc.epoch(s1).expect("retained");
    let later = svc.epoch(s2).expect("retained");
    let mut reconstructed = earlier.tenant(TenantId(0)).expect("present").clone();
    reconstructed.merge(&window).expect("delta merges");
    assert_eq!(
        encoded(&reconstructed),
        encoded(later.tenant(TenantId(0)).expect("present")),
        "window delta does not reconstruct the later epoch"
    );

    // A tenant absent at the earlier epoch yields its whole profile.
    let fresh = svc
        .tenant_window(TenantId(1), s1, s2)
        .expect("epochs consistent")
        .expect("retained");
    assert_eq!(
        encoded(&fresh),
        encoded(later.tenant(TenantId(1)).expect("present"))
    );

    // A third snapshot evicts the oldest epoch (retain = 2).
    let s3 = svc.snapshot().expect("snapshot").seq;
    assert_eq!(svc.epoch_seqs(), vec![s2, s3]);
    assert!(svc.epoch(s1).is_none(), "s1 evicted");
    assert!(
        svc.tenant_window(TenantId(0), s1, s3)
            .expect("consistent")
            .is_none(),
        "a window over an evicted epoch is None, not wrong"
    );
    drop(svc.shutdown());
}

/// Starts a fleet service + TCP server over `dir`, returning the stop
/// handle and the join handle of the accept loop.
fn spawn_server(
    addr: &str,
    dir: &std::path::Path,
) -> (
    Arc<FleetService<ProfileDatabase>>,
    Arc<std::sync::atomic::AtomicBool>,
    std::thread::JoinHandle<()>,
    std::net::SocketAddr,
) {
    let svc = Arc::new(
        FleetService::start(
            proto(),
            ServeConfig::builder()
                .shards(2)
                .data_dir(dir)
                .build()
                .unwrap(),
            FleetConfig::uniform(2, unmetered()),
        )
        .expect("fleet starts"),
    );
    // A just-stopped listener can linger; retry the bind briefly.
    let mut server = None;
    for _ in 0..200 {
        match FleetServer::bind(addr, Arc::clone(&svc)) {
            Ok(s) => {
                server = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let server = server.expect("bind succeeds within the retry budget");
    let local = server.local_addr();
    let stop = server.stop_handle();
    let handle = std::thread::spawn(move || server.run().expect("accept loop runs"));
    (svc, stop, handle, local)
}

fn stop_server(
    svc: Arc<FleetService<ProfileDatabase>>,
    stop: &std::sync::atomic::AtomicBool,
    handle: std::thread::JoinHandle<()>,
) {
    stop.store(true, Ordering::Release);
    handle.join().expect("accept loop exits cleanly");
    let svc = Arc::try_unwrap(svc)
        .unwrap_or_else(|_| panic!("service still shared after the server stopped"));
    drop(svc.shutdown().expect("fleet drains"));
}

#[test]
fn tcp_client_survives_server_restart_without_losing_acked_samples() {
    let dir = std::env::temp_dir().join(format!(
        "pm-fleet-net-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    drop(std::fs::remove_dir_all(&dir));
    let s = stream();
    let batches: Vec<&[Sample]> = s.samples.chunks(40).take(10).collect();
    assert_eq!(batches.len(), 10, "need ten batches for the restart plot");

    let (svc, stop, handle, local) = spawn_server("127.0.0.1:0", &dir);
    let addr = local.to_string();

    // A patient client: the backoff window must comfortably cover the
    // deliberate outage below.
    let cfg = ClientConfig {
        retry: RetryPolicy {
            max_retries: 400,
            ..RetryPolicy::default()
        },
        ..ClientConfig::default()
    };
    let mut client = FleetClient::new(addr.clone(), TenantId(0), cfg);
    let mut acked_samples = 0u64;
    for batch in &batches[..5] {
        let ack = client.send(batch).expect("batch acknowledged");
        assert_eq!(ack.level, DegradeLevel::Full);
        assert!(!ack.duplicate);
        acked_samples += ack.admitted;
    }

    // Kill the server gracefully (flushes the durable store), keep the
    // client sending into the outage, restart on the same port.
    stop_server(svc, &stop, handle);
    let sender = {
        let batch: Vec<Sample> = batches[5].to_vec();
        std::thread::spawn(move || {
            let ack = client.send(&batch).expect("retries bridge the outage");
            (client, ack)
        })
    };
    std::thread::sleep(Duration::from_millis(150));
    let (svc, stop, handle, _) = spawn_server(&addr, &dir);
    let (mut client, ack) = sender.join().expect("sender thread");
    assert!(!ack.duplicate, "a fresh server run must re-ingest seq 6");
    acked_samples += ack.admitted;
    for batch in &batches[6..] {
        acked_samples += client.send(batch).expect("batch acknowledged").admitted;
    }
    let stats = client.stats();
    assert_eq!(stats.batches_acked, 10);
    assert!(stats.retries > 0, "the outage forced retries: {stats:?}");
    assert!(stats.reconnects > 0, "the outage forced a reconnect");
    client.close();
    stop_server(svc, &stop, handle);

    // No acknowledged sample was lost: the recovered store holds every
    // acked batch exactly once.
    let (recovered, _) =
        ProfileStore::<Tenanted<ProfileDatabase>>::recover(&dir).expect("store recovers");
    let tenant0 = recovered.tenant(TenantId(0)).expect("tenant present");
    let expected: u64 = batches.iter().map(|b| b.len() as u64).sum();
    assert_eq!(acked_samples, expected, "every batch was admitted in full");
    assert_eq!(
        tenant0.total_samples, expected,
        "acknowledged samples lost (or duplicated) across the restart"
    );
    assert_eq!(
        encoded(tenant0),
        encoded(&direct(&s.samples[..400])),
        "recovered view diverged from direct aggregation"
    );
    drop(std::fs::remove_dir_all(&dir));
}

#[test]
fn tcp_rejects_unregistered_tenants_loudly() {
    let dir = std::env::temp_dir().join(format!(
        "pm-fleet-net-badtenant-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    drop(std::fs::remove_dir_all(&dir));
    let (svc, stop, handle, local) = spawn_server("127.0.0.1:0", &dir);
    let mut client = FleetClient::new(local.to_string(), TenantId(77), ClientConfig::default());
    let err = client
        .send(&stream().samples[..10])
        .expect_err("tenant 77 is not registered");
    assert!(
        err.to_string().contains("tenant-77"),
        "error names the tenant: {err}"
    );
    client.close();
    stop_server(svc, &stop, handle);
    drop(std::fs::remove_dir_all(&dir));
}
