//! Chaos tests of the supervision layer, driven by deterministic
//! fault plans (`--features fault-injection`).
//!
//! The contract under test, end to end:
//!
//! * a transient worker panic (a one-shot `nth` fault) is recovered
//!   from checkpoint + journal and the retried message is absorbed —
//!   the merged snapshot stays **byte-identical** to direct
//!   single-threaded aggregation;
//! * a message that panics on the retry too (recurring `every`/`p`
//!   faults) is dropped whole with **exact accounting**
//!   (`total_samples == enqueued − lost_to_panics`);
//! * deadline-bounded operations never block past their budget, even
//!   in front of a worker that is wedged forever (`stall` faults);
//! * a worker that cannot recover fails its shard loudly as
//!   [`ProfileError::WorkerCrashed`], never silently.

#![cfg(feature = "fault-injection")]

use profileme_core::{
    PairProfileDatabase, PairedConfig, ProfileDatabase, ProfileError, ProfileMeConfig, Session,
    WireFormat,
};
use profileme_serve::{FaultPlan, ServeConfig, ShardedService, SuperviseConfig};
use proptest::prelude::*;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

struct SingleStream {
    program: profileme_isa::Program,
    samples: Vec<profileme_core::Sample>,
    interval: u64,
    direct: Vec<u8>,
}

/// One simulator run shared by every test (the stream is deterministic;
/// producing it is the expensive part).
fn single_stream() -> &'static SingleStream {
    static STREAM: OnceLock<SingleStream> = OnceLock::new();
    STREAM.get_or_init(|| {
        let w = profileme_workloads::ijpeg(400);
        let run = Session::builder(w.program.clone())
            .memory(w.memory.clone())
            .sampling(ProfileMeConfig {
                mean_interval: 32,
                ..Default::default()
            })
            .build()
            .expect("config is valid")
            .profile_single()
            .expect("workload completes");
        assert!(
            run.samples.len() > 100,
            "stream too thin to exercise faults"
        );
        SingleStream {
            program: w.program,
            direct: run
                .db
                .encode(WireFormat::Sparse)
                .expect("snapshot serializes"),
            interval: run.db.interval(),
            samples: run.samples,
        }
    })
}

fn service_with(
    plan: &str,
    shards: usize,
    supervise: SuperviseConfig,
) -> ShardedService<ProfileDatabase> {
    let s = single_stream();
    ShardedService::start_with_faults(
        ProfileDatabase::new(&s.program, s.interval),
        ServeConfig::builder()
            .shards(shards)
            .supervise(supervise)
            .build()
            .expect("config is valid"),
        FaultPlan::parse(plan).expect("plan parses"),
    )
    .expect("service starts")
}

/// A one-shot panic is recovered losslessly: the retry absorbs the
/// in-flight message and the final bytes match direct aggregation.
#[test]
fn single_panic_recovers_byte_identically() {
    let s = single_stream();
    for shards in [1usize, 2, 4] {
        let svc = service_with("panic:shard=0:nth=3", shards, SuperviseConfig::default());
        for batch in s.samples.chunks(5) {
            svc.ingest_batch(batch.to_vec());
        }
        let snap = svc.snapshot().expect("snapshot survives the recovery");
        let (merged, stats) = svc.shutdown().expect("service drains");
        assert_eq!(stats.worker_panics, 1, "shards={shards}");
        assert_eq!(stats.workers_recovered, 1);
        assert_eq!(stats.lost(), 0, "one-shot faults lose nothing");
        assert_eq!(stats.enqueued, s.samples.len() as u64);
        assert_eq!(snap.merged.encode(WireFormat::Sparse).unwrap(), s.direct);
        assert_eq!(
            merged.encode(WireFormat::Sparse).unwrap(),
            s.direct,
            "recovered aggregation diverged at {shards} shard(s)"
        );
    }
}

/// Recovery still works when the panic lands mid-journal, across many
/// checkpoints (small `checkpoint_every` forces several rebuild+replay
/// cycles over real checkpoint bytes).
#[test]
fn recovery_replays_checkpoint_plus_journal() {
    let s = single_stream();
    let svc = service_with(
        "panic:shard=0:nth=7; panic:shard=0:nth=19; panic:shard=1:nth=11",
        2,
        SuperviseConfig {
            checkpoint_every: 4,
            ..SuperviseConfig::default()
        },
    );
    for sample in &s.samples {
        svc.ingest(sample.clone());
    }
    let (merged, stats) = svc.shutdown().expect("service drains");
    assert_eq!(stats.worker_panics, 3);
    assert_eq!(stats.workers_recovered, 3);
    assert!(stats.checkpoints > 0, "checkpoints were actually taken");
    assert_eq!(stats.lost(), 0);
    assert_eq!(merged.encode(WireFormat::Sparse).unwrap(), s.direct);
    // Those checkpoints rode the sparse columnar encoding
    // (`checkpoint_bytes` == `encode(WireFormat::Sparse)`,
    // magic-tagged "PMS1"),
    // and journal replay over them stayed byte-identical.
    assert_eq!(
        &s.direct[..4],
        b"PMS1",
        "checkpoints use the sparse wire format"
    );
}

/// A deadline-abandoned snapshot epoch must not lose its delta: the
/// worker publishes the delta for an epoch nobody reads, and carries
/// it forward into the next publication (the two-slot sweep). The next
/// successful snapshot still sees every sample.
#[test]
fn abandoned_deadline_epoch_loses_no_deltas() {
    let s = single_stream();
    // The worker sleeps 500 ms on its 2nd work message.
    let svc = service_with("delay:shard=0:nth=2:ms=500", 1, SuperviseConfig::default());
    svc.ingest_batch(s.samples[..10].to_vec());
    svc.snapshot().expect("healthy first cycle");
    // The 2nd batch hits the delay; a tiny deadline abandons its epoch
    // while the worker is asleep.
    svc.ingest_batch(s.samples[10..20].to_vec());
    let err = svc
        .snapshot_deadline(Duration::from_millis(10))
        .expect_err("the worker is mid-delay");
    assert!(matches!(
        err,
        ProfileError::DeadlineExceeded {
            what: "snapshot",
            ..
        }
    ));
    // The worker eventually publishes that abandoned epoch's delta
    // into a slot nobody reads. The next cycle must carry it.
    svc.ingest_batch(s.samples[20..30].to_vec());
    let snap = svc.snapshot().expect("worker has recovered");
    let mut direct = ProfileDatabase::new(&s.program, s.interval);
    for sample in &s.samples[..30] {
        direct.add(sample);
    }
    assert_eq!(
        snap.merged.encode(WireFormat::Sparse).unwrap(),
        direct.encode(WireFormat::Sparse).unwrap(),
        "the abandoned epoch's delta was dropped"
    );
    assert_eq!(svc.stats().deadline_misses, 1);
    drop(svc);
}

/// A recurring fault hits the retry too: the message is dropped whole
/// and the loss is accounted exactly, sample for sample.
#[test]
fn recurring_panics_drop_with_exact_accounting() {
    let s = single_stream();
    let svc = service_with("panic:every=5", 1, SuperviseConfig::default());
    for sample in &s.samples {
        svc.ingest(sample.clone());
    }
    let (merged, stats) = svc.shutdown().expect("service drains");
    let expected_lost = s.samples.len() as u64 / 5;
    assert_eq!(stats.lost_to_panics, expected_lost);
    assert_eq!(stats.worker_panics, 2 * expected_lost, "initial + retry");
    assert_eq!(stats.workers_recovered, 2 * expected_lost);
    assert_eq!(merged.total_samples, stats.enqueued - stats.lost_to_panics);
    assert!(matches!(
        svc_err(&stats),
        ProfileError::Degraded { level: 0, lost } if lost == expected_lost
    ));
}

/// Reconstructs the fidelity-check error from final stats (the service
/// is consumed by shutdown, so the check runs on a fresh equivalent).
fn svc_err(stats: &profileme_serve::IngestStats) -> ProfileError {
    ProfileError::Degraded {
        level: stats.degrade_level,
        lost: stats.lost(),
    }
}

/// With supervision disabled a panic kills the worker — and the crash
/// guard still fails the shard loudly instead of hanging callers.
#[test]
fn unsupervised_panic_surfaces_worker_crashed() {
    let s = single_stream();
    let svc = service_with(
        "panic:shard=0:nth=1",
        1,
        SuperviseConfig {
            enabled: false,
            ..SuperviseConfig::default()
        },
    );
    svc.ingest(s.samples[0].clone());
    // The worker dies on that message; wait for the crash guard to
    // close the queue, then every path reports the crash.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match svc.snapshot() {
            Err(ProfileError::WorkerCrashed { shard: 0 }) => break,
            Err(other) => panic!("unexpected error: {other}"),
            Ok(_) => {
                assert!(Instant::now() < deadline, "worker never crashed");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    // Ingest onto the dead shard is counted, not lost silently.
    svc.ingest(s.samples[1].clone());
    assert!(svc.stats().dropped >= 1);
    assert!(matches!(
        svc.shutdown(),
        Err(ProfileError::WorkerCrashed { shard: 0 })
    ));
}

/// An exhausted recovery budget fails the shard loudly.
#[test]
fn exhausted_recovery_budget_crashes_the_shard() {
    let s = single_stream();
    let svc = service_with(
        "panic:every=1",
        1,
        SuperviseConfig {
            max_recoveries: 3,
            ..SuperviseConfig::default()
        },
    );
    for sample in s.samples.iter().take(50) {
        svc.ingest(sample.clone());
    }
    let err = svc.shutdown().expect_err("the shard must crash");
    assert!(matches!(err, ProfileError::WorkerCrashed { shard: 0 }));
}

/// Deadline-bounded calls genuinely time out in front of a worker that
/// is wedged forever, and never block unboundedly.
#[test]
fn deadlines_hold_against_a_stalled_worker() {
    let s = single_stream();
    let svc = service_with("stall:shard=0:nth=1", 1, SuperviseConfig::default());
    // The worker stalls on its first message. Fill the queue twice
    // (it frees at most one slot by popping that message) so every
    // subsequent push faces a full queue forever.
    while svc.offer(s.samples[0].clone()) {}
    std::thread::sleep(Duration::from_millis(50));
    while svc.offer(s.samples[0].clone()) {}

    let start = Instant::now();
    let err = svc
        .ingest_deadline(vec![s.samples[1].clone()], Duration::from_millis(100))
        .expect_err("queue is wedged");
    assert!(matches!(
        err,
        ProfileError::DeadlineExceeded {
            what: "ingest",
            millis: 100
        }
    ));
    assert!(start.elapsed() < Duration::from_secs(5), "wait was bounded");

    let start = Instant::now();
    let err = svc
        .snapshot_deadline(Duration::from_millis(100))
        .expect_err("worker never answers the barrier");
    assert!(matches!(
        err,
        ProfileError::DeadlineExceeded {
            what: "snapshot",
            millis: 100
        }
    ));
    assert!(start.elapsed() < Duration::from_secs(5), "wait was bounded");

    let stats = svc.stats();
    assert!(stats.deadline_misses >= 2);
    assert!(stats.dropped >= 1, "abandoned deadline items are counted");

    let start = Instant::now();
    let err = svc
        .shutdown_deadline(Duration::from_millis(100))
        .expect_err("worker never drains");
    assert!(matches!(
        err,
        ProfileError::DeadlineExceeded {
            what: "shutdown",
            millis: 100
        }
    ));
    // The failed shutdown dropped the service; Drop released the stall
    // latch and reaped the worker within its own bounded wait.
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "drop was bounded"
    );
}

/// One random fault directive (possibly paired with a second), with a
/// flag for whether the combination is provably lossless (one-shot
/// faults only).
fn arb_directive() -> impl Strategy<Value = (String, bool)> {
    prop_oneof![
        (0usize..8, 1u64..16).prop_map(|(s, n)| (format!("panic:shard={s}:nth={n}"), true)),
        (1u64..16).prop_map(|n| (format!("panic:nth={n}"), true)),
        (3u64..9).prop_map(|n| (format!("panic:every={n}"), false)),
        (0usize..8, 1u64..16).prop_map(|(s, n)| (format!("delay:shard={s}:nth={n}:ms=1"), true)),
    ]
}

fn arb_plan() -> impl Strategy<Value = (String, bool)> {
    prop::collection::vec(arb_directive(), 1..=2).prop_map(|parts| {
        let lossless = parts.iter().all(|(_, l)| *l);
        let spec = parts
            .into_iter()
            .map(|(d, _)| d)
            .collect::<Vec<_>>()
            .join(";");
        (spec, lossless)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any random plan, any shard count: accounting is exact, and a
    /// plan that loses nothing leaves the bytes identical to direct
    /// aggregation.
    #[test]
    fn random_plans_keep_exact_accounting(
        (spec, lossless) in arb_plan(),
        shards in 1usize..=8,
        chunk in 1usize..=9,
    ) {
        let s = single_stream();
        let svc = service_with(
            &spec,
            shards,
            SuperviseConfig {
                checkpoint_every: 8,
                max_recoveries: 1_000_000,
                ..SuperviseConfig::default()
            },
        );
        for batch in s.samples.chunks(chunk) {
            svc.ingest_batch(batch.to_vec());
        }
        let (merged, stats) = svc.shutdown().expect("recoverable plans always drain");
        prop_assert_eq!(stats.enqueued, s.samples.len() as u64, "plan `{}`", &spec);
        prop_assert_eq!(stats.dropped, 0);
        // Exact accounting: every sample is either in the profile or
        // counted lost, never both, never neither.
        prop_assert_eq!(
            merged.total_samples,
            stats.enqueued - stats.lost_to_panics,
            "plan `{}` shards={} chunk={}", &spec, shards, chunk
        );
        prop_assert_eq!(stats.workers_recovered, stats.worker_panics);
        if lossless {
            prop_assert_eq!(stats.lost(), 0, "plan `{}`", &spec);
        }
        // Whenever nothing was lost — by construction or by luck of
        // the shard filter — recovery is byte-exact.
        if stats.lost() == 0 {
            prop_assert_eq!(
                merged.encode(WireFormat::Sparse).unwrap(),
                s.direct.clone(),
                "plan `{}` shards={} chunk={}", &spec, shards, chunk
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The same recovery contract holds for paired-sample aggregation.
    #[test]
    fn paired_aggregation_recovers_byte_identically(
        nth in 1u64..12,
        shards in 1usize..=4,
    ) {
        static PAIRED: OnceLock<(
            profileme_isa::Program,
            profileme_core::PairedRun,
            Vec<u8>,
        )> = OnceLock::new();
        let (program, run, direct) = PAIRED.get_or_init(|| {
            let w = profileme_workloads::compress(15_000);
            let run = Session::builder(w.program.clone())
                .memory(w.memory.clone())
                .paired_sampling(PairedConfig {
                    mean_major_interval: 48,
                    window: 64,
                    buffer_depth: 4,
                    ..PairedConfig::default()
                })
                .build()
                .expect("config is valid")
                .profile_paired()
                .expect("workload completes");
            let direct = run.db.encode(WireFormat::Sparse).expect("snapshot serializes");
            (w.program, run, direct)
        });
        let svc = ShardedService::start_with_faults(
            PairProfileDatabase::new(program, run.db.interval(), run.db.window()),
            ServeConfig::builder()
                .shards(shards)
                .build()
                .expect("config is valid"),
            FaultPlan::parse(&format!("panic:shard=0:nth={nth}")).unwrap(),
        )
        .expect("service starts");
        for batch in run.pairs.chunks(6) {
            svc.ingest_batch(batch.to_vec());
        }
        let (merged, stats) = svc.shutdown().expect("service drains");
        prop_assert_eq!(stats.lost(), 0);
        prop_assert_eq!(merged.encode(WireFormat::Sparse).unwrap(), direct.clone());
    }
}
