//! The global branch history register.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A global branch history register: the taken/not-taken directions of the
/// most recent conditional branches, newest in bit 0.
///
/// This is the register ProfileMe snapshots into the *Profiled Path
/// Register* (§4.1.3) and that path reconstruction (§5.3) consumes. It
/// holds up to 64 bits; analyses examine a prefix of the `len` most recent
/// directions.
///
/// # Example
///
/// ```
/// use profileme_cfg::BranchHistory;
/// let mut h = BranchHistory::new();
/// h.shift(true);
/// h.shift(false);
/// h.shift(true);
/// assert_eq!(h.recent(0), Some(true)); // newest
/// assert_eq!(h.recent(1), Some(false));
/// assert_eq!(h.recent(2), Some(true)); // oldest
/// assert_eq!(h.recent(3), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct BranchHistory {
    bits: u64,
    len: u8,
}

/// Maximum number of directions retained.
pub const MAX_HISTORY: usize = 64;

impl BranchHistory {
    /// Creates an empty history.
    pub fn new() -> BranchHistory {
        BranchHistory::default()
    }

    /// Records a branch direction (`true` = taken). The oldest direction is
    /// discarded once [`MAX_HISTORY`] are held.
    pub fn shift(&mut self, taken: bool) {
        self.bits = (self.bits << 1) | taken as u64;
        self.len = (self.len + 1).min(MAX_HISTORY as u8);
    }

    /// Direction of the `age`-th most recent branch (0 = newest), or `None`
    /// if fewer than `age + 1` directions have been recorded.
    pub fn recent(&self, age: usize) -> Option<bool> {
        if age < self.len as usize {
            Some((self.bits >> age) & 1 == 1)
        } else {
            None
        }
    }

    /// Number of directions recorded (saturating at [`MAX_HISTORY`]).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no directions have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The low `n` bits as an integer (newest in bit 0) — the form a
    /// gshare-style predictor XORs with the PC.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_HISTORY`.
    pub fn low_bits(&self, n: usize) -> u64 {
        assert!(n <= MAX_HISTORY);
        if n == 64 {
            self.bits
        } else {
            self.bits & ((1u64 << n) - 1)
        }
    }
}

impl fmt::Display for BranchHistory {
    /// Renders newest-first, `T` for taken, `N` for not-taken.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("(empty)");
        }
        for age in 0..self.len() {
            f.write_str(if self.recent(age) == Some(true) {
                "T"
            } else {
                "N"
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_order_newest_first() {
        let mut h = BranchHistory::new();
        for taken in [true, true, false, true] {
            h.shift(taken);
        }
        assert_eq!(h.len(), 4);
        assert_eq!(h.recent(0), Some(true));
        assert_eq!(h.recent(1), Some(false));
        assert_eq!(h.recent(2), Some(true));
        assert_eq!(h.recent(3), Some(true));
        assert_eq!(h.to_string(), "TNTT");
    }

    #[test]
    fn low_bits_for_indexing() {
        let mut h = BranchHistory::new();
        h.shift(true);
        h.shift(false);
        h.shift(true); // bits = 0b101
        assert_eq!(h.low_bits(2), 0b01);
        assert_eq!(h.low_bits(3), 0b101);
        assert_eq!(h.low_bits(64), 0b101);
    }

    #[test]
    fn saturates_at_max() {
        let mut h = BranchHistory::new();
        for i in 0..100 {
            h.shift(i % 2 == 0);
        }
        assert_eq!(h.len(), MAX_HISTORY);
        // recent(a) is the shift from iteration 99 - a: 99 - 63 = 36, even.
        assert_eq!(h.recent(63), Some(true));
        assert_eq!(h.recent(64), None);
    }

    #[test]
    fn empty_display() {
        assert_eq!(BranchHistory::new().to_string(), "(empty)");
    }
}
