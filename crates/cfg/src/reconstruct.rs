//! Backward path reconstruction from branch-history bits (§5.3).
//!
//! Given a sampled PC and the global-branch-history snapshot captured with
//! the sample, walk the CFG backward and enumerate the path segments whose
//! conditional-branch directions are consistent with the history. The
//! paper compares three schemes (Figure 6):
//!
//! 1. **Execution counts** — ignore the history; at every merge point pick
//!    the most frequent incoming edge (what trace-scheduling compilers do
//!    with basic-block profiles).
//! 2. **History bits** — enumerate all backward paths consistent with the
//!    history; success requires exactly one.
//! 3. **History bits + paired sampling** — additionally discard paths that
//!    do not contain the PC of the other instruction in a paired sample.

use crate::{BlockId, BranchHistory, Cfg, EdgeProfile};
use profileme_isa::{Pc, Program};
use serde::{Deserialize, Serialize};

/// Whether backward walks stay inside the sampled routine or continue
/// through call sites and callee exits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scope {
    /// Stop at the beginning of the sampled routine; skip over calls via
    /// the synthetic call-fall-through edge.
    Intraprocedural,
    /// Continue through call sites when reaching a routine's entry, and
    /// through callee exits when walking backward past a call.
    Interprocedural,
}

/// A reconstructed (or ground-truth) path segment: basic blocks in
/// execution order, ending at the block containing the sampled PC.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    /// Blocks in execution order (oldest first).
    pub blocks: Vec<BlockId>,
}

impl Path {
    /// Whether any block of the path contains `pc`.
    pub fn contains_pc(&self, cfg: &Cfg, pc: Pc) -> bool {
        self.blocks.iter().any(|&b| cfg.block(b).contains(pc))
    }

    /// Number of blocks in the path.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the path has no blocks (never produced by reconstruction).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Backward path reconstruction over a CFG.
///
/// # Example
///
/// ```
/// use profileme_cfg::{Cfg, Reconstructor, Scope, TraceRecorder};
/// use profileme_isa::{Cond, ProgramBuilder, Reg};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ProgramBuilder::new();
/// b.function("f");
/// b.load_imm(Reg::R1, 8);
/// let top = b.label("top");
/// b.addi(Reg::R1, Reg::R1, -1);
/// b.cond_br(Cond::Ne0, Reg::R1, top);
/// b.halt();
/// let p = b.build()?;
/// let cfg = Cfg::build(&p);
///
/// let mut rec = TraceRecorder::new(&p);
/// for _ in 0..7 {
///     rec.step(&p, &cfg)?;
/// }
/// let snap = rec.snapshot(&cfg);
/// let r = Reconstructor::new(&cfg, &p);
/// let paths = r.consistent_paths(snap.sample_pc, &snap.history, 2, Scope::Interprocedural, None);
/// let truth = snap.ground_truth(&cfg, &p, 2, Scope::Interprocedural).unwrap();
/// assert_eq!(paths, vec![truth]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Reconstructor<'a> {
    cfg: &'a Cfg,
    program: &'a Program,
    max_paths: usize,
    max_blocks: usize,
    max_expansions: usize,
}

/// Default cap on the number of enumerated paths; reconstruction already
/// counts as failed once more than one path survives, so a small cap only
/// bounds work.
const DEFAULT_MAX_PATHS: usize = 64;
/// Default cap on backward-search node expansions, bounding pathological
/// graphs (e.g. dense indirect-jump webs).
const DEFAULT_MAX_EXPANSIONS: usize = 100_000;

impl<'a> Reconstructor<'a> {
    /// Creates a reconstructor with default enumeration bounds.
    pub fn new(cfg: &'a Cfg, program: &'a Program) -> Reconstructor<'a> {
        Reconstructor {
            cfg,
            program,
            max_paths: DEFAULT_MAX_PATHS,
            max_blocks: 0, // derived per call from the history length
            max_expansions: DEFAULT_MAX_EXPANSIONS,
        }
    }

    /// Overrides the cap on enumerated paths.
    pub fn with_max_paths(mut self, max_paths: usize) -> Reconstructor<'a> {
        self.max_paths = max_paths;
        self
    }

    fn allowed_preds(
        &self,
        block: BlockId,
        scope: Scope,
        function: Option<usize>,
    ) -> Vec<crate::Edge> {
        use crate::EdgeKind::*;
        self.cfg
            .preds(block)
            .iter()
            .filter(|e| match scope {
                Scope::Intraprocedural => {
                    matches!(
                        e.kind,
                        Taken | NotTaken | Jump | FallThrough | CallFallThrough | IndirectJump
                    ) && self.cfg.block(e.from).function == function
                }
                Scope::Interprocedural => {
                    matches!(
                        e.kind,
                        Taken | NotTaken | Jump | FallThrough | Call | Return | IndirectJump
                    )
                }
            })
            .copied()
            .collect()
    }

    /// Enumerates every backward path from `sample_pc` consistent with the
    /// `history_len` most recent bits of `history`, under `scope`.
    ///
    /// If `paired_pc` is provided (the PC of the other instruction in a
    /// paired sample, fetched shortly before the sampled one), paths that
    /// do not contain it are discarded — the third scheme of Figure 6. The
    /// filter is only applied intraprocedurally when the paired PC lies in
    /// the sampled routine, since an intraprocedural path can never contain
    /// a foreign PC.
    ///
    /// The returned paths end at the block containing `sample_pc`; a path
    /// begins at the block whose terminating branch consumed the oldest
    /// history bit (or, intraprocedurally, at the routine entry if that is
    /// reached first). Returns an empty vector when `sample_pc` is outside
    /// the image, when the history is shorter than `history_len`, or when
    /// no consistent path exists.
    pub fn consistent_paths(
        &self,
        sample_pc: Pc,
        history: &BranchHistory,
        history_len: usize,
        scope: Scope,
        paired_pc: Option<Pc>,
    ) -> Vec<Path> {
        let Some(start) = self.cfg.block_of(sample_pc) else {
            return Vec::new();
        };
        if history.len() < history_len {
            return Vec::new();
        }
        let function = self.cfg.block(start).function;
        let max_blocks = if self.max_blocks > 0 {
            self.max_blocks
        } else {
            8 * history_len + 16
        };

        let mut results: Vec<Path> = Vec::new();
        let mut expansions = 0usize;
        // Work stack of (front block, bits consumed, path in reverse order,
        // call-matching stack). The call-matching stack holds, for every
        // Return edge crossed backward, the call block the walk must later
        // leave the callee through — pairing returns with their call sites
        // and pruning call/return-mismatched paths.
        type State = (BlockId, usize, Vec<BlockId>, Vec<BlockId>);
        let mut stack: Vec<State> = vec![(start, 0, vec![start], Vec::new())];
        while let Some((front, bits, rev_path, calls)) = stack.pop() {
            if results.len() > self.max_paths || expansions > self.max_expansions {
                break;
            }
            expansions += 1;
            if bits == history_len {
                push_unique(&mut results, &rev_path);
                continue;
            }
            if rev_path.len() > max_blocks {
                continue;
            }
            let preds = self.allowed_preds(front, scope, function);
            let mut extended = false;
            for e in &preds {
                let mut new_calls = None; // lazily cloned when it changes
                match e.kind {
                    crate::EdgeKind::Return => {
                        // Crossing a return backward: remember the call
                        // block that targets `front`, which the walk must
                        // exit the callee through.
                        if let Some(site) = self.call_block_before(front) {
                            let mut c = calls.clone();
                            c.push(site);
                            new_calls = Some(c);
                        }
                    }
                    crate::EdgeKind::Call => {
                        // Leaving a callee backward through its entry: the
                        // call site must match the pending return, if any.
                        match calls.last() {
                            Some(&expected) if expected != e.from => continue,
                            Some(_) => {
                                let mut c = calls.clone();
                                c.pop();
                                new_calls = Some(c);
                            }
                            None => {} // walk started inside the callee
                        }
                    }
                    _ => {}
                }
                match e.kind.history_bit() {
                    Some(bit) => {
                        if history.recent(bits) == Some(bit) {
                            let mut p = rev_path.clone();
                            p.push(e.from);
                            stack.push((
                                e.from,
                                bits + 1,
                                p,
                                new_calls.unwrap_or_else(|| calls.clone()),
                            ));
                            extended = true;
                        }
                    }
                    None => {
                        let mut p = rev_path.clone();
                        p.push(e.from);
                        stack.push((e.from, bits, p, new_calls.unwrap_or_else(|| calls.clone())));
                        extended = true;
                    }
                }
            }
            if !extended
                && scope == Scope::Intraprocedural
                && self.cfg.is_function_entry(front, self.program)
            {
                // The walk reached the beginning of the routine: the paper
                // accepts such shorter paths intraprocedurally.
                push_unique(&mut results, &rev_path);
            }
        }

        if let Some(pc) = paired_pc {
            let apply = match scope {
                Scope::Interprocedural => true,
                Scope::Intraprocedural => {
                    self.cfg.block_of(pc).map(|b| self.cfg.block(b).function) == Some(function)
                }
            };
            if apply {
                // The paired PC can only *narrow* the candidate set: if no
                // candidate contains it, the pair's other instruction
                // predates the reconstructed window (its fetch distance may
                // exceed the window the history bits span) and is
                // uninformative, so the filter is skipped.
                let filtered: Vec<Path> = results
                    .iter()
                    .filter(|p| p.contains_pc(self.cfg, pc))
                    .cloned()
                    .collect();
                if !filtered.is_empty() {
                    results = filtered;
                }
            }
        }
        results
    }

    /// The call block whose fall-through successor is `post_call` — i.e.
    /// the call site a Return edge into `post_call` corresponds to.
    fn call_block_before(&self, post_call: BlockId) -> Option<BlockId> {
        self.cfg
            .preds(post_call)
            .iter()
            .find(|e| e.kind == crate::EdgeKind::CallFallThrough)
            .map(|e| e.from)
    }

    /// The *execution counts* scheme: walk backward picking the most
    /// frequent incoming edge at every point (ties broken toward the
    /// lowest block id), until `branch_count` conditional branches are
    /// included or (intraprocedurally) the routine entry is reached.
    ///
    /// Returns `None` when `sample_pc` is outside the image or when an
    /// interprocedural walk dead-ends before spanning `branch_count`
    /// branches.
    pub fn most_likely_path(
        &self,
        sample_pc: Pc,
        branch_count: usize,
        profile: &EdgeProfile,
        scope: Scope,
    ) -> Option<Path> {
        let start = self.cfg.block_of(sample_pc)?;
        let function = self.cfg.block(start).function;
        let max_blocks = 8 * branch_count + 16;
        let mut rev_path = vec![start];
        let mut branches = 0;
        let mut front = start;
        let mut calls: Vec<BlockId> = Vec::new();
        while branches < branch_count && rev_path.len() <= max_blocks {
            let preds = self.allowed_preds(front, scope, function);
            let best = preds
                .iter()
                .filter(|e| {
                    // Keep call/return crossings matched, as in
                    // `consistent_paths`.
                    e.kind != crate::EdgeKind::Call
                        || calls.last().is_none_or(|&expected| expected == e.from)
                })
                .max_by_key(|e| (profile.count(e.from, e.to), std::cmp::Reverse(e.from)));
            let Some(e) = best else {
                if scope == Scope::Intraprocedural
                    && self.cfg.is_function_entry(front, self.program)
                {
                    break; // accepted short path
                }
                return None;
            };
            match e.kind {
                crate::EdgeKind::Return => {
                    if let Some(site) = self.call_block_before(front) {
                        calls.push(site);
                    }
                }
                crate::EdgeKind::Call => {
                    calls.pop();
                }
                _ => {}
            }
            rev_path.push(e.from);
            if e.kind.history_bit().is_some() {
                branches += 1;
            }
            front = e.from;
        }
        let mut blocks = rev_path;
        blocks.reverse();
        Some(Path { blocks })
    }
}

fn push_unique(results: &mut Vec<Path>, rev_path: &[BlockId]) {
    let mut blocks = rev_path.to_vec();
    blocks.reverse();
    let path = Path { blocks };
    if !results.contains(&path) {
        results.push(path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceRecorder;
    use profileme_isa::{Cond, ProgramBuilder, Reg};

    /// A loop whose body contains a data-dependent diamond:
    ///
    /// ```text
    /// top:  r2 = r1 & 1
    ///       beq r2, else
    ///       r3 += 1          (odd arm)
    ///       jmp join
    /// else: r4 += 1          (even arm)
    /// join: r1 -= 1
    ///       bne r1, top
    ///       halt
    /// ```
    fn diamond_loop(trips: i64) -> profileme_isa::Program {
        let mut b = ProgramBuilder::new();
        b.function("f");
        b.load_imm(Reg::R1, trips);
        let top = b.label("top");
        let else_ = b.forward_label("else");
        let join = b.forward_label("join");
        b.and(Reg::R2, Reg::R1, 1);
        b.cond_br(Cond::Eq0, Reg::R2, else_);
        b.addi(Reg::R3, Reg::R3, 1);
        b.jmp(join);
        b.place(else_);
        b.addi(Reg::R4, Reg::R4, 1);
        b.place(join);
        b.addi(Reg::R1, Reg::R1, -1);
        b.cond_br(Cond::Ne0, Reg::R1, top);
        b.halt();
        b.build().unwrap()
    }

    /// Runs the diamond loop, sampling before every step once warmed up,
    /// and checks reconstruction against ground truth.
    fn check_reconstruction(scope: Scope, history_len: usize) -> (usize, usize) {
        let p = diamond_loop(40);
        let cfg = Cfg::build(&p);
        let mut rec = TraceRecorder::new(&p);
        let r = Reconstructor::new(&cfg, &p);
        let mut successes = 0;
        let mut attempts = 0;
        let mut warmup = 30; // let the history fill
        while !rec.halted() {
            if warmup == 0 {
                let snap = rec.snapshot(&cfg);
                if let Some(truth) = snap.ground_truth(&cfg, &p, history_len, scope) {
                    attempts += 1;
                    let paths =
                        r.consistent_paths(snap.sample_pc, &snap.history, history_len, scope, None);
                    if paths.len() == 1 && paths[0] == truth {
                        successes += 1;
                    }
                }
            } else {
                warmup -= 1;
            }
            rec.step(&p, &cfg).unwrap();
        }
        (successes, attempts)
    }

    #[test]
    fn interprocedural_reconstruction_is_exact_without_calls() {
        // With no calls and no indirect jumps, an interprocedural backward
        // walk is uniquely determined by the history bits: incomplete
        // escape-through-the-entry hypotheses are discarded because they
        // cannot span the full history. Success rate is 100%.
        for len in [1, 2, 4, 6] {
            let (ok, total) = check_reconstruction(Scope::Interprocedural, len);
            assert!(total > 0, "no attempts for len {len}");
            assert_eq!(ok, total, "history {len}: {ok}/{total}");
        }
    }

    #[test]
    fn intraprocedural_reconstruction_suffers_loop_head_ambiguity() {
        // Intraprocedurally the walk may stop at the routine entry, so a
        // sample whose walk reaches the loop head with bits remaining has
        // two consistent hypotheses (entered vs. looped) and fails the
        // uniqueness test. Accuracy is positive but below the
        // interprocedural scheme — the trend Figure 6 reports.
        let (ok1, total1) = check_reconstruction(Scope::Intraprocedural, 1);
        assert!(total1 > 0);
        assert!(ok1 > 0, "some short walks are unambiguous: {ok1}/{total1}");
        let (ok_inter, _) = check_reconstruction(Scope::Interprocedural, 1);
        assert!(ok1 <= ok_inter);
    }

    #[test]
    fn wrong_history_yields_no_paths() {
        let p = diamond_loop(10);
        let cfg = Cfg::build(&p);
        let mut rec = TraceRecorder::new(&p);
        for _ in 0..20 {
            rec.step(&p, &cfg).unwrap();
        }
        let snap = rec.snapshot(&cfg);
        // Invert the real history: no consistent path should survive a
        // history that disagrees with every branch... construct one.
        let mut wrong = BranchHistory::new();
        for age in (0..snap.history.len()).rev() {
            wrong.shift(snap.history.recent(age) != Some(true));
        }
        let r = Reconstructor::new(&cfg, &p);
        let real = r.consistent_paths(
            snap.sample_pc,
            &snap.history,
            3,
            Scope::Interprocedural,
            None,
        );
        let fake = r.consistent_paths(snap.sample_pc, &wrong, 3, Scope::Interprocedural, None);
        assert_eq!(real.len(), 1);
        assert!(fake.len() <= 1);
        if let Some(f) = fake.first() {
            assert_ne!(f, &real[0]);
        }
    }

    #[test]
    fn paired_filter_discards_paths_missing_the_pc() {
        let p = diamond_loop(40);
        let cfg = Cfg::build(&p);
        let mut rec = TraceRecorder::new(&p);
        for _ in 0..50 {
            rec.step(&p, &cfg).unwrap();
        }
        let snap = rec.snapshot(&cfg);
        let r = Reconstructor::new(&cfg, &p);
        let unfiltered = r.consistent_paths(
            snap.sample_pc,
            &snap.history,
            4,
            Scope::Interprocedural,
            None,
        );
        assert_eq!(unfiltered.len(), 1);
        // A paired PC actually on the path keeps it.
        let on_path = snap.pc_before(3).unwrap();
        let kept = r.consistent_paths(
            snap.sample_pc,
            &snap.history,
            4,
            Scope::Interprocedural,
            Some(on_path),
        );
        assert_eq!(kept, unfiltered);
    }

    #[test]
    fn most_likely_path_prefers_frequent_edges() {
        let p = diamond_loop(41); // odd trips: odd arm runs one extra time
        let cfg = Cfg::build(&p);
        let mut rec = TraceRecorder::new(&p);
        while !rec.halted() {
            rec.step(&p, &cfg).unwrap();
        }
        // Reconstruct backward from the join block using execution counts.
        let join_pc = p.entry().advance(6); // `addi r1, r1, -1` at join
        let r = Reconstructor::new(&cfg, &p);
        let path = r
            .most_likely_path(join_pc, 1, rec.edge_profile(), Scope::Intraprocedural)
            .unwrap();
        // The path must pass through one of the two arms; both had ~equal
        // counts, so just check shape: ends at join block, has >= 2 blocks.
        assert!(path.len() >= 2);
        assert_eq!(*path.blocks.last().unwrap(), cfg.block_of(join_pc).unwrap());
    }

    #[test]
    fn out_of_image_sample_yields_nothing() {
        let p = diamond_loop(4);
        let cfg = Cfg::build(&p);
        let r = Reconstructor::new(&cfg, &p);
        let h = BranchHistory::new();
        assert!(r
            .consistent_paths(Pc::new(0), &h, 0, Scope::Interprocedural, None)
            .is_empty());
    }
}
