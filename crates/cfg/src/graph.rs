//! Control-flow graph construction.

use crate::{BasicBlock, BlockId};
use profileme_isa::{Op, Pc, Program};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The kind of a control-flow edge; determines whether traversing it
/// consumes a branch-history bit during path reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Conditional branch, taken. Consumes a history bit (value 1).
    Taken,
    /// Conditional branch, fall-through. Consumes a history bit (value 0).
    NotTaken,
    /// Unconditional direct jump. No history bit.
    Jump,
    /// Plain fall-through into a block that is a leader only because it is
    /// a branch target. No history bit.
    FallThrough,
    /// Call to the callee's entry block. No history bit.
    Call,
    /// Synthetic edge from a call block to the instruction after the call,
    /// used by *intraprocedural* walks to skip over the callee. No history
    /// bit (any callee branches are invisible, which is exactly the
    /// approximation whose cost Figure 6 quantifies).
    CallFallThrough,
    /// Return from a callee exit block to a post-call-site block. No
    /// history bit.
    Return,
    /// Indirect jump edge learned from observation. No history bit.
    IndirectJump,
}

impl EdgeKind {
    /// The history-bit value this edge consumes, if any.
    pub fn history_bit(self) -> Option<bool> {
        match self {
            EdgeKind::Taken => Some(true),
            EdgeKind::NotTaken => Some(false),
            _ => None,
        }
    }
}

/// A directed control-flow edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source block.
    pub from: BlockId,
    /// Destination block.
    pub to: BlockId,
    /// The kind of transfer.
    pub kind: EdgeKind,
}

/// A control-flow graph over the basic blocks of a [`Program`].
///
/// Built statically by [`Cfg::build`]; indirect-jump edges (which cannot be
/// derived statically) are added afterwards with
/// [`Cfg::add_indirect_edge`], typically from an observed trace.
///
/// # Example
///
/// ```
/// use profileme_cfg::{Cfg, EdgeKind};
/// use profileme_isa::{Cond, ProgramBuilder, Reg};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ProgramBuilder::new();
/// b.function("f");
/// let top = b.label("top");
/// b.addi(Reg::R1, Reg::R1, -1);
/// b.cond_br(Cond::Ne0, Reg::R1, top);
/// b.halt();
/// let p = b.build()?;
/// let cfg = Cfg::build(&p);
/// let body = cfg.block_of(p.entry()).unwrap();
/// let kinds: Vec<EdgeKind> = cfg.succs(body).iter().map(|e| e.kind).collect();
/// assert!(kinds.contains(&EdgeKind::Taken));
/// assert!(kinds.contains(&EdgeKind::NotTaken));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    succs: Vec<Vec<Edge>>,
    preds: Vec<Vec<Edge>>,
}

impl Cfg {
    /// Builds the static CFG of `program`.
    ///
    /// Leaders are: the image base, function entries, direct control-flow
    /// targets, and every instruction following a control transfer or
    /// `Halt`. Return edges are added statically from each `ret`-terminated
    /// block to the block following every direct call site of its function.
    /// Indirect jumps get no static successors; see
    /// [`add_indirect_edge`](Cfg::add_indirect_edge).
    pub fn build(program: &Program) -> Cfg {
        let mut leaders: BTreeSet<Pc> = BTreeSet::new();
        leaders.insert(program.base());
        for f in program.functions() {
            leaders.insert(f.entry);
        }
        for (pc, inst) in program.iter() {
            if let Some(target) = inst.direct_target() {
                if program.contains(target) {
                    leaders.insert(target);
                }
            }
            if inst.is_control() || inst.is_halt() {
                let next = pc.next();
                if program.contains(next) {
                    leaders.insert(next);
                }
            }
        }

        // Carve blocks between leaders, further split at control/halt
        // instructions (a control transfer always ends its block).
        let leader_list: Vec<Pc> = leaders.into_iter().collect();
        let mut blocks = Vec::new();
        for (i, &start) in leader_list.iter().enumerate() {
            let region_end = leader_list.get(i + 1).copied().unwrap_or(program.end());
            if start >= region_end {
                continue;
            }
            // Because every instruction *after* a control transfer is a
            // leader, a region can contain at most one control transfer,
            // and it is necessarily the last instruction. So each region is
            // exactly one block.
            let function = program.function_of(start).map(|f| {
                program
                    .functions()
                    .iter()
                    .position(|g| g.entry == f.entry)
                    .unwrap()
            });
            blocks.push(BasicBlock {
                id: BlockId(blocks.len() as u32),
                start,
                end: region_end,
                function,
            });
        }

        let n = blocks.len();
        let mut cfg = Cfg {
            blocks,
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
        };

        for b in 0..n {
            let block = cfg.blocks[b].clone();
            let from = block.id;
            let last = block.last_pc();
            let inst = *program.fetch(last).expect("block instruction in image");
            match inst.op {
                Op::CondBr { target, .. } => {
                    if let Some(to) = cfg.block_of(target) {
                        cfg.push_edge(Edge {
                            from,
                            to,
                            kind: EdgeKind::Taken,
                        });
                    }
                    if let Some(to) = cfg.block_of(last.next()) {
                        cfg.push_edge(Edge {
                            from,
                            to,
                            kind: EdgeKind::NotTaken,
                        });
                    }
                }
                Op::Jmp { target } => {
                    if let Some(to) = cfg.block_of(target) {
                        cfg.push_edge(Edge {
                            from,
                            to,
                            kind: EdgeKind::Jump,
                        });
                    }
                }
                Op::Call { target, .. } => {
                    if let Some(to) = cfg.block_of(target) {
                        cfg.push_edge(Edge {
                            from,
                            to,
                            kind: EdgeKind::Call,
                        });
                    }
                    if let Some(to) = cfg.block_of(last.next()) {
                        cfg.push_edge(Edge {
                            from,
                            to,
                            kind: EdgeKind::CallFallThrough,
                        });
                    }
                }
                Op::Ret { .. } => {
                    // Return edges to the block after each direct call site
                    // of the containing function.
                    if let Some(f) = block.function.map(|i| &program.functions()[i]) {
                        for site in program.call_sites_of(f.entry) {
                            if let Some(to) = cfg.block_of(site.next()) {
                                cfg.push_edge(Edge {
                                    from,
                                    to,
                                    kind: EdgeKind::Return,
                                });
                            }
                        }
                    }
                }
                Op::JmpInd { .. } => {} // learned later
                Op::Halt => {}
                _ => {
                    // Straight-line block split by a leader: falls through.
                    if let Some(to) = cfg.block_of(block.end) {
                        cfg.push_edge(Edge {
                            from,
                            to,
                            kind: EdgeKind::FallThrough,
                        });
                    }
                }
            }
        }
        cfg
    }

    fn push_edge(&mut self, e: Edge) {
        self.succs[e.from.index()].push(e);
        self.preds[e.to.index()].push(e);
    }

    /// Adds an indirect-jump edge observed at run time (idempotent).
    ///
    /// `from_pc` must be the PC of an indirect jump instruction and `to_pc`
    /// a PC inside the image; out-of-image endpoints are ignored.
    pub fn add_indirect_edge(&mut self, from_pc: Pc, to_pc: Pc) {
        let (Some(from), Some(to)) = (self.block_of(from_pc), self.block_of(to_pc)) else {
            return;
        };
        let e = Edge {
            from,
            to,
            kind: EdgeKind::IndirectJump,
        };
        if !self.succs[from.index()].contains(&e) {
            self.push_edge(e);
        }
    }

    /// Number of basic blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the graph has no blocks (never true for built programs).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a block of this graph.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// All blocks, in address order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Outgoing edges of `id`.
    pub fn succs(&self, id: BlockId) -> &[Edge] {
        &self.succs[id.index()]
    }

    /// Incoming edges of `id`.
    pub fn preds(&self, id: BlockId) -> &[Edge] {
        &self.preds[id.index()]
    }

    /// The block containing `pc`, if any.
    pub fn block_of(&self, pc: Pc) -> Option<BlockId> {
        let idx = self.blocks.partition_point(|b| b.start <= pc);
        let candidate = &self.blocks[idx.checked_sub(1)?];
        candidate.contains(pc).then_some(candidate.id)
    }

    /// Whether `id` is the entry block of its function.
    pub fn is_function_entry(&self, id: BlockId, program: &Program) -> bool {
        let b = self.block(id);
        b.function
            .map(|i| program.functions()[i].entry == b.start)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profileme_isa::{Cond, ProgramBuilder, Reg};

    /// main calls f in a loop; f has an if/else diamond.
    fn diamond_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.function("main");
        b.load_imm(Reg::R1, 10);
        let top = b.label("top");
        let f = b.forward_label("f");
        b.call(f);
        b.addi(Reg::R1, Reg::R1, -1);
        b.cond_br(Cond::Ne0, Reg::R1, top);
        b.halt();
        b.function("f");
        b.place(f);
        let else_ = b.forward_label("else");
        let join = b.forward_label("join");
        b.and(Reg::R2, Reg::R1, 1);
        b.cond_br(Cond::Eq0, Reg::R2, else_);
        b.addi(Reg::R3, Reg::R3, 1);
        b.jmp(join);
        b.place(else_);
        b.addi(Reg::R4, Reg::R4, 1);
        b.place(join);
        b.ret();
        b.build().unwrap()
    }

    #[test]
    fn diamond_block_structure() {
        let p = diamond_program();
        let cfg = Cfg::build(&p);
        // main: [ldi], [call], [addi; bne], [halt] ; f: [and; beq], [addi; jmp], [addi(else)], [ret]
        assert_eq!(cfg.len(), 8);
        for b in cfg.blocks() {
            assert!(!b.is_empty());
        }
    }

    #[test]
    fn cond_branch_has_both_edges() {
        let p = diamond_program();
        let cfg = Cfg::build(&p);
        let f = p.function_named("f").unwrap();
        let cond = cfg.block_of(f.entry).unwrap();
        let kinds: Vec<EdgeKind> = cfg.succs(cond).iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EdgeKind::Taken));
        assert!(kinds.contains(&EdgeKind::NotTaken));
    }

    #[test]
    fn call_and_return_edges() {
        let p = diamond_program();
        let cfg = Cfg::build(&p);
        let f = p.function_named("f").unwrap();
        let f_entry = cfg.block_of(f.entry).unwrap();
        // The callee entry has an incoming Call edge.
        assert!(cfg.preds(f_entry).iter().any(|e| e.kind == EdgeKind::Call));
        // The ret block has a Return edge back to the post-call block.
        let ret_block = cfg
            .blocks()
            .iter()
            .find(|b| {
                p.fetch(b.last_pc())
                    .is_some_and(|i| matches!(i.op, Op::Ret { .. }))
            })
            .unwrap();
        assert!(cfg
            .succs(ret_block.id)
            .iter()
            .any(|e| e.kind == EdgeKind::Return));
        // The call block also has a synthetic intraprocedural edge.
        let call_block = cfg
            .blocks()
            .iter()
            .find(|b| {
                p.fetch(b.last_pc())
                    .is_some_and(|i| matches!(i.op, Op::Call { .. }))
            })
            .unwrap();
        assert!(cfg
            .succs(call_block.id)
            .iter()
            .any(|e| e.kind == EdgeKind::CallFallThrough));
    }

    #[test]
    fn block_of_lookup() {
        let p = diamond_program();
        let cfg = Cfg::build(&p);
        for b in cfg.blocks() {
            for pc in b.pcs() {
                assert_eq!(cfg.block_of(pc), Some(b.id), "pc {pc}");
            }
        }
        assert_eq!(cfg.block_of(p.end()), None);
        assert_eq!(cfg.block_of(Pc::new(0)), None);
    }

    #[test]
    fn indirect_edges_learned_idempotently() {
        let mut b = ProgramBuilder::new();
        b.function("d");
        b.jmp_ind(Reg::R1);
        b.nop();
        b.halt();
        let p = b.build().unwrap();
        let mut cfg = Cfg::build(&p);
        let jmp = cfg.block_of(p.entry()).unwrap();
        assert!(cfg.succs(jmp).is_empty());
        let target = p.entry().advance(1);
        cfg.add_indirect_edge(p.entry(), target);
        cfg.add_indirect_edge(p.entry(), target);
        assert_eq!(cfg.succs(jmp).len(), 1);
        assert_eq!(cfg.succs(jmp)[0].kind, EdgeKind::IndirectJump);
    }

    #[test]
    fn every_pred_mirrors_a_succ() {
        let p = diamond_program();
        let cfg = Cfg::build(&p);
        for b in cfg.blocks() {
            for e in cfg.succs(b.id) {
                assert!(cfg.preds(e.to).contains(e));
            }
            for e in cfg.preds(b.id) {
                assert!(cfg.succs(e.from).contains(e));
            }
        }
    }
}
