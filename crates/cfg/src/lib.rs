//! # profileme-cfg
//!
//! Control-flow graphs and the path-reconstruction analysis of ProfileMe
//! §5.3 ("Path Profiles").
//!
//! ProfileMe captures the processor's *global branch history register* —
//! the taken/not-taken directions of the last N conditional branches — with
//! every sample. Combined with static analysis of the program's
//! control-flow graph, that history lets profiling software walk *backward*
//! from a sampled PC and recover the path segment that led to it. This
//! crate supplies all the pieces:
//!
//! * [`Cfg`] — basic blocks and typed edges (taken / not-taken /
//!   fall-through / jump / call / return / learned indirect), built from a
//!   [`Program`](profileme_isa::Program).
//! * [`BranchHistory`] — the global history register abstraction shared
//!   with the branch predictor in `profileme-uarch`.
//! * [`EdgeProfile`] — edge execution frequencies, the input to the
//!   "execution counts" reconstruction scheme the paper compares against.
//! * [`TraceRecorder`] — runs a program functionally while tracking the
//!   executed block sequence and the history register, providing ground
//!   truth for reconstruction experiments (Figure 6).
//! * [`reconstruct`] — the three schemes of Figure 6: execution counts,
//!   history bits, and history bits + paired sampling, in both
//!   intraprocedural and interprocedural variants.
//!
//! # Example
//!
//! ```
//! use profileme_cfg::Cfg;
//! use profileme_isa::{Cond, ProgramBuilder, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! b.function("f");
//! b.load_imm(Reg::R1, 5);
//! let top = b.label("top");
//! b.addi(Reg::R1, Reg::R1, -1);
//! b.cond_br(Cond::Ne0, Reg::R1, top);
//! b.halt();
//! let p = b.build()?;
//! let cfg = Cfg::build(&p);
//! // The loop produces three blocks: preheader, body, exit.
//! assert_eq!(cfg.len(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod graph;
mod history;
mod profile;
pub mod reconstruct;
mod trace;

pub use block::{BasicBlock, BlockId};
pub use graph::{Cfg, Edge, EdgeKind};
pub use history::{BranchHistory, MAX_HISTORY};
pub use profile::EdgeProfile;
pub use reconstruct::{Path, Reconstructor, Scope};
pub use trace::{TraceRecorder, TraceSnapshot};
