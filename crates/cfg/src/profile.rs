//! Edge execution-frequency profiles.

use crate::BlockId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Execution counts for control-flow edges, keyed by `(from, to)` block.
///
/// This is the input to the *execution counts* path-construction scheme of
/// Figure 6 — the conventional technique (used by trace-scheduling
/// compilers) that picks the most frequent predecessor at each merge point,
/// which ProfileMe's history-bits schemes are compared against.
///
/// # Example
///
/// ```
/// use profileme_cfg::{BlockId, EdgeProfile};
/// # let (a, b) = (BlockId::from_index(0), BlockId::from_index(1));
/// let mut p = EdgeProfile::new();
/// p.record(a, b);
/// p.record(a, b);
/// assert_eq!(p.count(a, b), 2);
/// assert_eq!(p.count(b, a), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeProfile {
    counts: HashMap<(BlockId, BlockId), u64>,
    total: u64,
}

impl BlockId {
    /// Constructs a block id from a dense index (for tests and external
    /// tables; graph construction assigns ids itself).
    pub fn from_index(index: usize) -> BlockId {
        BlockId(u32::try_from(index).expect("block index fits in u32"))
    }
}

impl EdgeProfile {
    /// Creates an empty profile.
    pub fn new() -> EdgeProfile {
        EdgeProfile::default()
    }

    /// Records one traversal of the edge `from → to`.
    pub fn record(&mut self, from: BlockId, to: BlockId) {
        *self.counts.entry((from, to)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of recorded traversals of `from → to`.
    pub fn count(&self, from: BlockId, to: BlockId) -> u64 {
        self.counts.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Total number of recorded transitions.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct edges observed.
    pub fn distinct_edges(&self) -> usize {
        self.counts.len()
    }

    /// Iterates `((from, to), count)` over all observed edges, in
    /// unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = ((BlockId, BlockId), u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }
}

impl Extend<(BlockId, BlockId)> for EdgeProfile {
    fn extend<I: IntoIterator<Item = (BlockId, BlockId)>>(&mut self, iter: I) {
        for (from, to) in iter {
            self.record(from, to);
        }
    }
}

impl FromIterator<(BlockId, BlockId)> for EdgeProfile {
    fn from_iter<I: IntoIterator<Item = (BlockId, BlockId)>>(iter: I) -> EdgeProfile {
        let mut p = EdgeProfile::new();
        p.extend(iter);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting() {
        let a = BlockId::from_index(0);
        let b = BlockId::from_index(1);
        let c = BlockId::from_index(2);
        let p: EdgeProfile = [(a, b), (a, b), (a, c)].into_iter().collect();
        assert_eq!(p.count(a, b), 2);
        assert_eq!(p.count(a, c), 1);
        assert_eq!(p.count(c, a), 0);
        assert_eq!(p.total(), 3);
        assert_eq!(p.distinct_edges(), 2);
    }
}
