//! Functional-trace recording: block sequences, branch history, and ground
//! truth for path-reconstruction experiments.

use crate::{BlockId, BranchHistory, Cfg, EdgeProfile, Path, Scope};
use profileme_isa::{ArchState, ExecError, Op, Pc, Program, StepOutcome};
use std::collections::VecDeque;

/// One executed basic-block instance in the trace window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockRecord {
    block: BlockId,
    function: Option<usize>,
    /// Direction of the block's terminating conditional branch, filled in
    /// when it executes.
    branch: Option<bool>,
}

/// Runs a program functionally while tracking everything the Figure 6
/// experiment needs: the global branch history at each point, a window of
/// recently executed blocks (for ground-truth paths), recently executed
/// instruction PCs (for simulated paired samples), learned indirect-jump
/// edges, and an [`EdgeProfile`].
///
/// # Example
///
/// ```
/// use profileme_cfg::{Cfg, TraceRecorder};
/// use profileme_isa::{Cond, ProgramBuilder, Reg};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ProgramBuilder::new();
/// b.function("f");
/// b.load_imm(Reg::R1, 3);
/// let top = b.label("top");
/// b.addi(Reg::R1, Reg::R1, -1);
/// b.cond_br(Cond::Ne0, Reg::R1, top);
/// b.halt();
/// let p = b.build()?;
/// let cfg = Cfg::build(&p);
/// let mut rec = TraceRecorder::new(&p);
/// while !rec.halted() {
///     rec.step(&p, &cfg)?;
/// }
/// // The loop branch executed 3 times: taken, taken, not-taken.
/// assert_eq!(rec.history().len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceRecorder {
    arch: ArchState,
    history: BranchHistory,
    ring: VecDeque<BlockRecord>,
    pc_ring: VecDeque<Pc>,
    capacity: usize,
    last_block: Option<BlockId>,
    edge_profile: EdgeProfile,
    indirect_edges: Vec<(Pc, Pc)>,
}

/// Default number of block/PC records retained.
const DEFAULT_WINDOW: usize = 4096;

/// A point-in-time view of the trace, captured when a sample is taken,
/// from which ground-truth paths are derived.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// The branch history at the sample point.
    pub history: BranchHistory,
    /// PC of the instruction about to execute (the sampled instruction).
    pub sample_pc: Pc,
    blocks: Vec<BlockRecord>,
    pcs: Vec<Pc>,
}

impl TraceRecorder {
    /// Creates a recorder positioned at the program entry with the default
    /// trace window.
    pub fn new(program: &Program) -> TraceRecorder {
        TraceRecorder::with_state(ArchState::new(program))
    }

    /// Creates a recorder around a pre-initialized architectural state.
    pub fn with_state(arch: ArchState) -> TraceRecorder {
        TraceRecorder {
            arch,
            history: BranchHistory::new(),
            ring: VecDeque::with_capacity(DEFAULT_WINDOW),
            pc_ring: VecDeque::with_capacity(DEFAULT_WINDOW),
            capacity: DEFAULT_WINDOW,
            last_block: None,
            edge_profile: EdgeProfile::new(),
            indirect_edges: Vec::new(),
        }
    }

    /// The underlying architectural state.
    pub fn arch(&self) -> &ArchState {
        &self.arch
    }

    /// Whether the program has halted.
    pub fn halted(&self) -> bool {
        self.arch.halted()
    }

    /// The current global branch history.
    pub fn history(&self) -> &BranchHistory {
        &self.history
    }

    /// The accumulated edge profile.
    pub fn edge_profile(&self) -> &EdgeProfile {
        &self.edge_profile
    }

    /// Indirect-jump transitions observed so far, for
    /// [`Cfg::add_indirect_edge`].
    pub fn indirect_edges(&self) -> &[(Pc, Pc)] {
        &self.indirect_edges
    }

    /// Executes one instruction, updating the trace window.
    ///
    /// # Errors
    ///
    /// Propagates emulator errors (PC escape).
    pub fn step(&mut self, program: &Program, cfg: &Cfg) -> Result<StepOutcome, ExecError> {
        let pc = self.arch.pc();
        if let Some(block_id) = cfg.block_of(pc) {
            let block = cfg.block(block_id);
            if pc == block.start {
                if let Some(prev) = self.last_block {
                    self.edge_profile.record(prev, block_id);
                }
                self.push_block(BlockRecord {
                    block: block_id,
                    function: block.function,
                    branch: None,
                });
                self.last_block = Some(block_id);
            }
        }
        let outcome = self.arch.step(program)?;
        if self.pc_ring.len() == self.capacity {
            self.pc_ring.pop_front();
        }
        self.pc_ring.push_back(outcome.pc);
        if let Some(taken) = outcome.taken {
            self.history.shift(taken);
            if let Some(last) = self.ring.back_mut() {
                last.branch = Some(taken);
            }
        }
        if matches!(outcome.inst.op, Op::JmpInd { .. } | Op::Ret { .. }) && outcome.redirected() {
            self.indirect_edges.push((outcome.pc, outcome.next_pc));
        }
        Ok(outcome)
    }

    fn push_block(&mut self, record: BlockRecord) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(record);
    }

    /// Captures a snapshot describing the instruction *about to execute*,
    /// to be taken immediately before [`step`](TraceRecorder::step).
    pub fn snapshot(&self, cfg: &Cfg) -> TraceSnapshot {
        let mut blocks: Vec<BlockRecord> = self.ring.iter().copied().collect();
        // If the sampled instruction begins a block, that block instance
        // has not been entered yet; append it so the snapshot's last entry
        // is always the (possibly partial) block containing the sample.
        if let Some(id) = cfg.block_of(self.arch.pc()) {
            let block = cfg.block(id);
            if self.arch.pc() == block.start {
                blocks.push(BlockRecord {
                    block: id,
                    function: block.function,
                    branch: None,
                });
            }
        }
        TraceSnapshot {
            history: self.history,
            sample_pc: self.arch.pc(),
            blocks,
            pcs: self.pc_ring.iter().copied().collect(),
        }
    }
}

impl TraceSnapshot {
    /// PC of the instruction executed `distance` steps before the sample
    /// point (1 = the immediately preceding instruction), or `None` if the
    /// window does not reach that far.
    pub fn pc_before(&self, distance: usize) -> Option<Pc> {
        if distance == 0 {
            return Some(self.sample_pc);
        }
        self.pcs.len().checked_sub(distance).map(|i| self.pcs[i])
    }

    /// The actual backward path ending at the sampled instruction,
    /// covering the window of the `history_len` most recent branch-history
    /// bits — the ground truth that reconstructed paths are judged against.
    ///
    /// For [`Scope::Intraprocedural`], only blocks of the sampled
    /// function are included (callee excursions are excised, though their
    /// branches still count toward the history window, exactly as they
    /// pollute the real history register), and the walk also stops when it
    /// reaches the function's entry from a caller. For
    /// [`Scope::Interprocedural`], all blocks are included and the path
    /// must span the full `history_len` branches to be complete.
    ///
    /// Returns `None` when the trace window is too short (or, for
    /// interprocedural, when execution began inside the window).
    pub fn ground_truth(
        &self,
        cfg: &Cfg,
        program: &Program,
        history_len: usize,
        scope: Scope,
    ) -> Option<Path> {
        let last = *self.blocks.last()?;
        let sampled_function = last.function;
        let mut rev_blocks = vec![last.block];
        let mut bits_needed = history_len.min(self.history.len());
        if history_len > self.history.len() {
            // Not enough real history recorded yet.
            return None;
        }
        let mut i = self.blocks.len().checked_sub(2);
        while bits_needed > 0 {
            let idx = i?;
            let e = self.blocks[idx];
            match scope {
                Scope::Interprocedural => rev_blocks.push(e.block),
                Scope::Intraprocedural => {
                    if e.function == sampled_function {
                        rev_blocks.push(e.block);
                        if cfg.is_function_entry(e.block, program) {
                            let prev_in_f = idx
                                .checked_sub(1)
                                .map(|j| self.blocks[j].function == sampled_function)
                                .unwrap_or(false);
                            if !prev_in_f {
                                // Entered the routine here: the
                                // intraprocedural path is complete.
                                break;
                            }
                        }
                    }
                }
            }
            if e.branch.is_some() {
                bits_needed -= 1;
            }
            i = idx.checked_sub(1);
        }
        rev_blocks.reverse();
        Some(Path { blocks: rev_blocks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profileme_isa::{Cond, ProgramBuilder, Reg};

    fn loop_program(trips: i64) -> Program {
        let mut b = ProgramBuilder::new();
        b.function("f");
        b.load_imm(Reg::R1, trips);
        let top = b.label("top");
        b.addi(Reg::R1, Reg::R1, -1);
        b.cond_br(Cond::Ne0, Reg::R1, top);
        b.halt();
        b.build().unwrap()
    }

    fn run_to_halt(rec: &mut TraceRecorder, p: &Program, cfg: &Cfg) {
        while !rec.halted() {
            rec.step(p, cfg).unwrap();
        }
    }

    #[test]
    fn history_matches_branch_executions() {
        let p = loop_program(4);
        let cfg = Cfg::build(&p);
        let mut rec = TraceRecorder::new(&p);
        run_to_halt(&mut rec, &p, &cfg);
        // 4 executions: T, T, T, N (newest first: N T T T).
        assert_eq!(rec.history().to_string(), "NTTT");
    }

    #[test]
    fn edge_profile_counts_loop_back_edges() {
        let p = loop_program(5);
        let cfg = Cfg::build(&p);
        let mut rec = TraceRecorder::new(&p);
        run_to_halt(&mut rec, &p, &cfg);
        let body = cfg.block_of(p.entry().advance(1)).unwrap();
        assert_eq!(rec.edge_profile().count(body, body), 4);
    }

    #[test]
    fn ground_truth_for_simple_loop() {
        let p = loop_program(6);
        let cfg = Cfg::build(&p);
        let mut rec = TraceRecorder::new(&p);
        // Step until we are about to execute the body for the 4th time.
        // entry block: ldi (1 step); each iteration: addi + bne (2 steps).
        for _ in 0..(1 + 3 * 2) {
            rec.step(&p, &cfg).unwrap();
        }
        let snap = rec.snapshot(&cfg);
        let body = cfg.block_of(p.entry().advance(1)).unwrap();
        assert_eq!(snap.sample_pc, p.entry().advance(1));
        let truth = snap
            .ground_truth(&cfg, &p, 2, Scope::Interprocedural)
            .expect("window long enough");
        // Two most recent branches were both the loop branch: path is
        // body -> body -> body (current partial instance last).
        assert_eq!(truth.blocks, vec![body, body, body]);
    }

    #[test]
    fn ground_truth_requires_enough_history() {
        let p = loop_program(2);
        let cfg = Cfg::build(&p);
        let mut rec = TraceRecorder::new(&p);
        rec.step(&p, &cfg).unwrap(); // only the ldi executed: no branches yet
        let snap = rec.snapshot(&cfg);
        assert!(snap
            .ground_truth(&cfg, &p, 1, Scope::Interprocedural)
            .is_none());
    }

    #[test]
    fn pc_before_walks_executed_instructions() {
        let p = loop_program(2);
        let cfg = Cfg::build(&p);
        let mut rec = TraceRecorder::new(&p);
        rec.step(&p, &cfg).unwrap();
        rec.step(&p, &cfg).unwrap();
        let snap = rec.snapshot(&cfg);
        assert_eq!(snap.pc_before(0), Some(snap.sample_pc));
        assert_eq!(snap.pc_before(1), Some(p.entry().advance(1)));
        assert_eq!(snap.pc_before(2), Some(p.entry()));
        assert_eq!(snap.pc_before(3), None);
    }
}
