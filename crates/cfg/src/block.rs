//! Basic blocks.

use profileme_isa::{Pc, Program};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier of a basic block within a [`Cfg`](crate::Cfg).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub(crate) u32);

impl BlockId {
    /// The block's dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A maximal straight-line region of instructions: control enters only at
/// `start` and leaves only after the last instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// This block's id.
    pub id: BlockId,
    /// PC of the first instruction.
    pub start: Pc,
    /// PC one past the last instruction (exclusive).
    pub end: Pc,
    /// Index into [`Program::functions`] of the containing function, if any.
    pub function: Option<usize>,
}

impl BasicBlock {
    /// Whether `pc` lies within the block.
    pub fn contains(&self, pc: Pc) -> bool {
        self.start <= pc && pc < self.end
    }

    /// PC of the last instruction in the block.
    pub fn last_pc(&self) -> Pc {
        debug_assert!(self.start < self.end);
        Pc::new(self.end.addr() - 4)
    }

    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the block is empty (never true for built CFGs).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Iterates the PCs of the block's instructions.
    pub fn pcs(&self) -> impl Iterator<Item = Pc> {
        let (start, n) = (self.start, self.len());
        (0..n as u64).map(move |i| start.advance(i))
    }

    /// Whether the block ends in a conditional branch.
    pub fn ends_in_cond_branch(&self, program: &Program) -> bool {
        program
            .fetch(self.last_pc())
            .is_some_and(|i| i.is_cond_branch())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> BasicBlock {
        BasicBlock {
            id: BlockId(3),
            start: Pc::new(0x100),
            end: Pc::new(0x110),
            function: Some(0),
        }
    }

    #[test]
    fn geometry() {
        let b = block();
        assert_eq!(b.len(), 4);
        assert_eq!(b.last_pc(), Pc::new(0x10c));
        assert!(b.contains(Pc::new(0x100)));
        assert!(b.contains(Pc::new(0x10c)));
        assert!(!b.contains(Pc::new(0x110)));
        assert_eq!(b.pcs().count(), 4);
    }

    #[test]
    fn display() {
        assert_eq!(BlockId(7).to_string(), "B7");
    }
}
