//! Deep interprocedural reconstruction: walks that cross several call /
//! return boundaries, shared helpers with multiple call sites, and the
//! call-matching stack that keeps them honest.

use profileme_cfg::{Cfg, Reconstructor, Scope, TraceRecorder};
use profileme_isa::{Cond, Program, ProgramBuilder, Reg};

/// main -> {siteA, siteB} -> mid -> leaf, with a data-dependent diamond
/// in `leaf`: a backward walk from inside `leaf` crosses two call
/// boundaries and must return through the correct chain of sites.
fn nested_calls(trips: i64) -> Program {
    let mut b = ProgramBuilder::new();
    b.function("main");
    let mid = b.forward_label("mid");
    let leaf = b.forward_label("leaf");
    b.load_imm(Reg::R1, trips);
    b.load_imm(Reg::R10, 0x77_1234);
    let top = b.label("top");
    // advance pseudo-random state
    b.mul(Reg::R10, Reg::R10, Reg::R10);
    b.addi(Reg::R10, Reg::R10, 0x9E37);
    // two call sites for `mid`, chosen by a data bit
    let site_b = b.forward_label("site_b");
    let joined = b.forward_label("joined");
    b.and(Reg::R2, Reg::R10, 2);
    b.cond_br(Cond::Eq0, Reg::R2, site_b);
    b.call(mid);
    b.jmp(joined);
    b.place(site_b);
    b.call(mid);
    b.place(joined);
    b.addi(Reg::R1, Reg::R1, -1);
    b.cond_br(Cond::Ne0, Reg::R1, top);
    b.halt();

    b.function("mid");
    b.place(mid);
    // Save/restore the link register around the nested call.
    b.store(Reg::LINK, Reg::SP, 0);
    b.call(leaf);
    b.load(Reg::LINK, Reg::SP, 0);
    b.addi(Reg::R3, Reg::R3, 1);
    b.ret();

    b.function("leaf");
    b.place(leaf);
    let else_ = b.forward_label("else");
    let join = b.forward_label("join");
    b.and(Reg::R4, Reg::R10, 4);
    b.cond_br(Cond::Eq0, Reg::R4, else_);
    b.addi(Reg::R5, Reg::R5, 1);
    b.jmp(join);
    b.place(else_);
    b.addi(Reg::R6, Reg::R6, 1);
    b.place(join);
    b.ret();
    b.build().unwrap()
}

#[test]
fn truth_is_among_paths_across_two_call_levels() {
    let p = nested_calls(30);
    let cfg = Cfg::build(&p);
    let r = Reconstructor::new(&cfg, &p).with_max_paths(512);
    let mut rec = TraceRecorder::new(&p);
    let mut checked = 0;
    let mut unique = 0;
    let mut step = 0u64;
    while !rec.halted() {
        if step.is_multiple_of(5) {
            let snap = rec.snapshot(&cfg);
            for len in [2usize, 4, 6] {
                if let Some(truth) = snap.ground_truth(&cfg, &p, len, Scope::Interprocedural) {
                    let paths = r.consistent_paths(
                        snap.sample_pc,
                        &snap.history,
                        len,
                        Scope::Interprocedural,
                        None,
                    );
                    assert!(
                        paths.contains(&truth),
                        "truth missing at pc {} len {len} ({} paths)",
                        snap.sample_pc,
                        paths.len()
                    );
                    checked += 1;
                    if paths.len() == 1 {
                        unique += 1;
                    }
                }
            }
        }
        rec.step(&p, &cfg).unwrap();
        step += 1;
    }
    assert!(checked > 100, "checked {checked}");
    // The two call sites of `mid` create genuine ambiguity for walks
    // that exit it backward with no bits to discriminate — so not every
    // sample is unique, but a solid majority is (the sites are reached
    // through a *conditional* branch whose direction is a history bit).
    assert!(
        unique * 2 > checked,
        "call-site matching keeps most walks unique: {unique}/{checked}"
    );
}

#[test]
fn mismatched_call_return_paths_are_pruned() {
    let p = nested_calls(30);
    let cfg = Cfg::build(&p);
    let r = Reconstructor::new(&cfg, &p).with_max_paths(512);
    let mut rec = TraceRecorder::new(&p);
    // Walk to a steady state, then sample right after a return from
    // `mid` (the post-call block), where a naive walk would consider
    // entering `mid` backward through the *other* call site.
    let mut step = 0;
    let mut tested = 0;
    while !rec.halted() {
        let snap = rec.snapshot(&cfg);
        if step > 50 {
            if let Some(truth) = snap.ground_truth(&cfg, &p, 3, Scope::Interprocedural) {
                let paths = r.consistent_paths(
                    snap.sample_pc,
                    &snap.history,
                    3,
                    Scope::Interprocedural,
                    None,
                );
                // Soundness plus pruning: every returned path must keep
                // call/return pairing — verified indirectly: the path
                // count stays small (without matching it explodes
                // combinatorially on this program).
                assert!(
                    paths.len() <= 4,
                    "{} paths at {}",
                    paths.len(),
                    snap.sample_pc
                );
                assert!(paths.contains(&truth));
                tested += 1;
            }
        }
        rec.step(&p, &cfg).unwrap();
        step += 1;
    }
    assert!(tested > 50);
}
