//! Property tests for the CFG crate over randomly generated structured
//! programs: block tiling, edge symmetry, trace/graph agreement, and the
//! soundness of backward path reconstruction (the ground-truth path is
//! always among the consistent paths).

use profileme_cfg::{Cfg, Reconstructor, Scope, TraceRecorder};
use profileme_isa::{Cond, Program, ProgramBuilder, Reg};
use proptest::prelude::*;

/// One structured construct inside the loop body.
#[derive(Debug, Clone)]
enum Construct {
    /// A few ALU instructions.
    Straight(u8),
    /// A data-dependent if/else diamond.
    Diamond,
    /// A call to one of the helper functions.
    Call(u8),
}

fn arb_construct() -> impl Strategy<Value = Construct> {
    prop_oneof![
        (1u8..4).prop_map(Construct::Straight),
        Just(Construct::Diamond),
        (0u8..2).prop_map(Construct::Call),
    ]
}

/// Builds: main = counted loop over the given constructs; two helper
/// functions, one of which itself contains a diamond. Branch conditions
/// are data-dependent on an LFSR-ish register so directions vary.
fn build_program(constructs: &[Construct], trips: i64) -> Program {
    let mut b = ProgramBuilder::new();
    b.function("main");
    let helpers = [b.forward_label("h0"), b.forward_label("h1")];
    b.load_imm(Reg::R1, trips);
    b.load_imm(Reg::R10, 0x1234_5678); // pseudo-random state
    let top = b.label("top");
    for (i, c) in constructs.iter().enumerate() {
        match c {
            Construct::Straight(n) => {
                for _ in 0..*n {
                    b.addi(Reg::R3, Reg::R3, 1);
                }
            }
            Construct::Diamond => {
                // advance the LFSR-ish state, then branch on one bit
                b.mul(Reg::R10, Reg::R10, Reg::R10);
                b.addi(Reg::R10, Reg::R10, 0x9E37);
                b.shr(Reg::R11, Reg::R10, (i % 13) as i64 + 1);
                b.and(Reg::R11, Reg::R11, 1);
                let else_ = b.forward_label(format!("else{i}"));
                let join = b.forward_label(format!("join{i}"));
                b.cond_br(Cond::Eq0, Reg::R11, else_);
                b.addi(Reg::R4, Reg::R4, 1);
                b.jmp(join);
                b.place(else_);
                b.addi(Reg::R5, Reg::R5, 1);
                b.place(join);
            }
            Construct::Call(h) => {
                b.call(helpers[*h as usize % 2]);
            }
        }
    }
    b.addi(Reg::R1, Reg::R1, -1);
    b.cond_br(Cond::Ne0, Reg::R1, top);
    b.halt();

    b.function("h0");
    b.place(helpers[0]);
    b.addi(Reg::R6, Reg::R6, 1);
    b.ret();

    b.function("h1");
    b.place(helpers[1]);
    b.and(Reg::R7, Reg::R10, 2);
    let skip = b.forward_label("skip");
    b.cond_br(Cond::Ne0, Reg::R7, skip);
    b.addi(Reg::R8, Reg::R8, 1);
    b.place(skip);
    b.ret();

    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocks tile the image: every instruction belongs to exactly one block.
    #[test]
    fn blocks_tile_the_image(cs in prop::collection::vec(arb_construct(), 1..8)) {
        let p = build_program(&cs, 3);
        let cfg = Cfg::build(&p);
        let mut covered = vec![0u32; p.len()];
        for b in cfg.blocks() {
            for pc in b.pcs() {
                covered[p.index_of(pc).unwrap()] += 1;
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
    }

    /// preds and succs are mirror images.
    #[test]
    fn edge_symmetry(cs in prop::collection::vec(arb_construct(), 1..8)) {
        let p = build_program(&cs, 3);
        let cfg = Cfg::build(&p);
        for b in cfg.blocks() {
            for e in cfg.succs(b.id) {
                prop_assert!(cfg.preds(e.to).contains(e));
            }
            for e in cfg.preds(b.id) {
                prop_assert!(cfg.succs(e.from).contains(e));
            }
        }
    }

    /// Every observed block transition corresponds to a static CFG edge
    /// (these programs have no indirect jumps other than returns, whose
    /// edges are derived statically).
    #[test]
    fn trace_transitions_are_cfg_edges(cs in prop::collection::vec(arb_construct(), 1..8)) {
        let p = build_program(&cs, 4);
        let cfg = Cfg::build(&p);
        let mut rec = TraceRecorder::new(&p);
        while !rec.halted() {
            rec.step(&p, &cfg).unwrap();
        }
        for ((from, to), _) in rec.edge_profile().iter() {
            prop_assert!(
                cfg.succs(from).iter().any(|e| e.to == to),
                "transition {from} -> {to} has no CFG edge"
            );
        }
    }

    /// Soundness of reconstruction: the ground-truth path is always among
    /// the interprocedurally consistent paths.
    #[test]
    fn ground_truth_is_among_consistent_paths(
        cs in prop::collection::vec(arb_construct(), 1..6),
        history_len in 1usize..8,
        sample_stride in 3usize..12,
    ) {
        // 16 trips guarantee the history holds `history_len` bits with many
        // sampling opportunities left before the program halts.
        let p = build_program(&cs, 16);
        let cfg = Cfg::build(&p);
        let mut rec = TraceRecorder::new(&p);
        let r = Reconstructor::new(&cfg, &p).with_max_paths(4096);
        let mut step = 0usize;
        let mut checked = 0;
        while !rec.halted() && step < 4000 {
            if step.is_multiple_of(sample_stride) {
                let snap = rec.snapshot(&cfg);
                if let Some(truth) =
                    snap.ground_truth(&cfg, &p, history_len, Scope::Interprocedural)
                {
                    let paths = r.consistent_paths(
                        snap.sample_pc,
                        &snap.history,
                        history_len,
                        Scope::Interprocedural,
                        None,
                    );
                    prop_assert!(
                        paths.contains(&truth),
                        "truth {truth:?} missing from {} paths at pc {} (history {})",
                        paths.len(),
                        snap.sample_pc,
                        snap.history,
                    );
                    checked += 1;
                }
            }
            rec.step(&p, &cfg).unwrap();
            step += 1;
        }
        prop_assert!(checked > 0, "no samples were checked");
    }
}
