//! Profile persistence: DCPI-style profiling systems log samples and
//! databases to disk; every software-visible record here must round-trip
//! through serde losslessly.

use profileme_core::{PairedConfig, ProfileMeConfig, Session};
use profileme_isa::{Cond, Program, ProgramBuilder, Reg};

fn small_workload() -> Program {
    let mut b = ProgramBuilder::new();
    b.function("main");
    b.load_imm(Reg::R9, 3_000);
    b.load_imm(Reg::R12, 0x40_0000);
    let top = b.label("top");
    b.load(Reg::R1, Reg::R12, 0);
    b.addi(Reg::R12, Reg::R12, 256);
    b.and(Reg::R2, Reg::R1, 1);
    let skip = b.forward_label("skip");
    b.cond_br(Cond::Ne0, Reg::R2, skip);
    b.add(Reg::R3, Reg::R3, Reg::R1);
    b.place(skip);
    b.addi(Reg::R9, Reg::R9, -1);
    b.cond_br(Cond::Ne0, Reg::R9, top);
    b.halt();
    b.build().unwrap()
}

#[test]
fn single_run_artifacts_round_trip() {
    let p = small_workload();
    let cfg = ProfileMeConfig {
        mean_interval: 64,
        buffer_depth: 4,
        ..Default::default()
    };
    let run = Session::builder(p)
        .sampling(cfg)
        .build()
        .unwrap()
        .profile_single()
        .unwrap();
    assert!(!run.samples.is_empty());

    // Raw samples (the interrupt handler's log records).
    let json = serde_json::to_string(&run.samples).expect("samples serialize");
    let back: Vec<profileme_core::Sample> =
        serde_json::from_str(&json).expect("samples deserialize");
    assert_eq!(back, run.samples);

    // The aggregated database (the on-disk profile).
    let json = serde_json::to_string(&run.db).expect("database serializes");
    let back: profileme_core::ProfileDatabase =
        serde_json::from_str(&json).expect("database deserializes");
    assert_eq!(back, run.db);

    // Simulator statistics (the validation ground truth).
    let json = serde_json::to_string(&run.stats).expect("stats serialize");
    let back: profileme_uarch::SimStats = serde_json::from_str(&json).expect("stats deserialize");
    assert_eq!(back, run.stats);
}

#[test]
fn paired_run_artifacts_round_trip() {
    let p = small_workload();
    let cfg = PairedConfig {
        mean_major_interval: 128,
        window: 32,
        buffer_depth: 2,
        ..Default::default()
    };
    let run = Session::builder(p)
        .paired_sampling(cfg)
        .build()
        .unwrap()
        .profile_paired()
        .unwrap();
    assert!(!run.pairs.is_empty());

    let json = serde_json::to_string(&run.pairs).expect("pairs serialize");
    let back: Vec<profileme_core::PairedSample> =
        serde_json::from_str(&json).expect("pairs deserialize");
    assert_eq!(back, run.pairs);

    let json = serde_json::to_string(&run.db).expect("pair database serializes");
    let back: profileme_core::PairProfileDatabase =
        serde_json::from_str(&json).expect("pair database deserializes");
    assert_eq!(back, run.db);
}

/// Databases rebuilt from persisted raw samples equal the originals —
/// aggregation is a pure function of the sample stream.
#[test]
fn database_is_reconstructible_from_samples() {
    let p = small_workload();
    let cfg = ProfileMeConfig {
        mean_interval: 64,
        buffer_depth: 4,
        ..Default::default()
    };
    let run = Session::builder(p.clone())
        .sampling(cfg)
        .build()
        .unwrap()
        .profile_single()
        .unwrap();
    let mut rebuilt = profileme_core::ProfileDatabase::new(&p, run.db.interval());
    for s in &run.samples {
        rebuilt.add(s);
    }
    assert_eq!(rebuilt, run.db);
}
