//! Property tests of the sparse snapshot plane: the delta algebra
//! (`extract_delta`/`apply_delta`) over random add/merge
//! interleavings, dense/sparse decoder agreement on every snapshot,
//! and the incremental top-N index against a from-scratch `top_n`.

use profileme_cfg::BranchHistory;
use profileme_core::{
    PairProfileDatabase, PairProfileField, PairedSample, ProfileDatabase, ProfileField, Sample,
    TopNIndex, WireFormat,
};
use profileme_isa::{Program, ProgramBuilder};
use profileme_uarch::{CompletedSample, EventSet, TagId, Timestamps};
use proptest::prelude::*;

const IMAGE_LEN: u64 = 48;

fn program() -> Program {
    let mut b = ProgramBuilder::new();
    b.function("f");
    for _ in 0..IMAGE_LEN - 1 {
        b.nop();
    }
    b.halt();
    b.build().unwrap()
}

/// Expands a random bit pattern into the profiled events it selects.
fn events(bits: u16) -> EventSet {
    let all = [
        EventSet::ICACHE_MISS,
        EventSet::ITLB_MISS,
        EventSet::DCACHE_MISS,
        EventSet::DTLB_MISS,
        EventSet::L2_MISS,
        EventSet::BRANCH_TAKEN,
        EventSet::MISPREDICTED,
    ];
    let mut e = EventSet::new();
    for (i, bit) in all.into_iter().enumerate() {
        if bits & (1 << i) != 0 {
            e.set(bit);
        }
    }
    e
}

fn sample(p: &Program, row: u64, event_bits: u16, retired: bool) -> Sample {
    Sample {
        record: Some(CompletedSample {
            tag: TagId(0),
            seq: 0,
            pc: p.base().advance(row),
            context: 1,
            class: profileme_isa::OpClass::Nop,
            events: events(event_bits),
            retired,
            eff_addr: None,
            taken: None,
            history: BranchHistory::new(),
            timestamps: Timestamps {
                fetched: 10,
                retire_ready: Some(25),
                ..Timestamps::default()
            },
            latencies: None,
            mem_latency: None,
        }),
        selected_cycle: 0,
    }
}

/// One mutation: a direct `add`, or a `merge` of a small peer database
/// built from its own adds (the two ways counters grow in production).
#[derive(Debug, Clone)]
enum Op {
    Add {
        row: u64,
        events: u16,
        retired: bool,
    },
    Merge(Vec<(u64, u16, bool)>),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..IMAGE_LEN, any::<u16>(), any::<bool>()).prop_map(|(row, events, retired)| Op::Add {
            row,
            events,
            retired
        }),
        prop::collection::vec((0..IMAGE_LEN, any::<u16>(), any::<bool>()), 1..6)
            .prop_map(Op::Merge),
    ]
}

fn apply(db: &mut ProfileDatabase, p: &Program, op: &Op) {
    match op {
        Op::Add {
            row,
            events,
            retired,
        } => db.add(&sample(p, *row, *events, *retired)),
        Op::Merge(adds) => {
            let mut peer = ProfileDatabase::new(p, db.interval());
            for (row, events, retired) in adds {
                peer.add(&sample(p, *row, *events, *retired));
            }
            db.merge(&peer).unwrap();
        }
    }
}

proptest! {
    /// `apply_delta` is the exact inverse of `extract_delta`: cutting
    /// deltas at arbitrary points in a random add/merge interleaving
    /// and replaying them onto a replica reproduces the database
    /// exactly — same equality, same snapshot bytes.
    #[test]
    fn delta_extraction_round_trips_random_interleavings(
        ops in prop::collection::vec(arb_op(), 1..60),
        cut_every in 1usize..8,
    ) {
        let p = program();
        let mut db = ProfileDatabase::new(&p, 100);
        let mut base = db.clone();
        let mut replica = db.clone();
        for (i, op) in ops.iter().enumerate() {
            apply(&mut db, &p, op);
            if (i + 1) % cut_every == 0 {
                let chunk = db.extract_delta(&mut base).unwrap();
                replica.apply_delta(&chunk).unwrap();
            }
        }
        let chunk = db.extract_delta(&mut base).unwrap();
        replica.apply_delta(&chunk).unwrap();
        prop_assert_eq!(&replica, &db);
        prop_assert_eq!(&base, &db, "extract_delta syncs its base");
        prop_assert_eq!(
            replica.encode(WireFormat::Sparse).unwrap(),
            db.encode(WireFormat::Sparse).unwrap()
        );
        // A delta over no changes is a no-op when applied.
        let noop = db.extract_delta(&mut base).unwrap();
        replica.apply_delta(&noop).unwrap();
        prop_assert_eq!(&replica, &db);
    }

    /// The dense (JSON) and sparse (columnar) decoders agree on every
    /// snapshot: both round-trip to the original database, and
    /// re-encoding is canonical.
    #[test]
    fn dense_and_sparse_decoders_agree(
        ops in prop::collection::vec(arb_op(), 0..40),
    ) {
        let p = program();
        let mut db = ProfileDatabase::new(&p, 100);
        for op in &ops {
            apply(&mut db, &p, op);
        }
        let sparse = db.encode(WireFormat::Sparse).unwrap();
        let dense = db.encode(WireFormat::Dense).unwrap();
        let from_sparse = ProfileDatabase::decode(&sparse).unwrap();
        let from_dense = ProfileDatabase::decode(&dense).unwrap();
        prop_assert_eq!(&from_sparse, &db);
        prop_assert_eq!(&from_dense, &db);
        prop_assert_eq!(from_dense.encode(WireFormat::Sparse).unwrap(), sparse);
    }

    /// The incremental top-N index matches `top_n` recomputed from
    /// scratch after every step of a random ingest, at every depth up
    /// to (and past) its rank bound.
    #[test]
    fn incremental_top_n_matches_scratch(
        adds in prop::collection::vec((0..IMAGE_LEN, any::<u16>(), any::<bool>()), 1..120),
        k in 1usize..6,
    ) {
        let p = program();
        let mut db = ProfileDatabase::new(&p, 100);
        let mut idx = TopNIndex::new(k);
        for (row, events, retired) in adds {
            db.add(&sample(&p, row, events, retired));
            idx.update_rows(&db, &[row as u32]);
        }
        for field in ProfileField::ALL {
            for n in 0..=k {
                match idx.top_n(&db, n, field) {
                    Some(fast) => prop_assert_eq!(fast, db.top_n(n, field), "n={} k={}", n, k),
                    None => prop_assert!(false, "n <= k is always answerable"),
                }
            }
            // Past the bound the index either still knows every
            // positive row, or correctly declines.
            if let Some(fast) = idx.top_n(&db, k + 1, field) {
                prop_assert_eq!(fast, db.top_n(k + 1, field));
            }
        }
    }
}

fn pair(p: &Program, first_row: u64, second_row: u64, dist: u64) -> PairedSample {
    PairedSample {
        first: sample(p, first_row, 0, true),
        second: sample(p, second_row, 1 << 5, true),
        distance_instructions: dist.max(1),
        distance_cycles: dist.max(1) * 2,
    }
}

proptest! {
    /// The same delta algebra holds for the pair database, and its new
    /// `top_n` agrees with a manual scan.
    #[test]
    fn pair_delta_round_trips_and_top_n_ranks(
        pairs in prop::collection::vec((0..IMAGE_LEN, 0..IMAGE_LEN, 1u64..16), 1..40),
        cut_every in 1usize..6,
    ) {
        let p = program();
        let mut db = PairProfileDatabase::new(&p, 100, 16);
        let mut base = db.clone();
        let mut replica = db.clone();
        for (i, (a, b, dist)) in pairs.iter().enumerate() {
            db.add(&pair(&p, *a, *b, *dist));
            if (i + 1) % cut_every == 0 {
                let chunk = db.extract_delta(&mut base).unwrap();
                replica.apply_delta(&chunk).unwrap();
            }
        }
        let chunk = db.extract_delta(&mut base).unwrap();
        replica.apply_delta(&chunk).unwrap();
        prop_assert_eq!(&replica, &db);
        prop_assert_eq!(
            replica.encode(WireFormat::Sparse).unwrap(),
            db.encode(WireFormat::Sparse).unwrap()
        );
        // Dense/sparse agreement for the pair database too.
        let from_dense =
            PairProfileDatabase::decode(&db.encode(WireFormat::Dense).unwrap()).unwrap();
        prop_assert_eq!(&from_dense, &db);
        // top_n is the first n of the full ranking.
        let full = db.top_n(usize::MAX, PairProfileField::Samples);
        for n in [0usize, 1, 3] {
            prop_assert_eq!(
                db.top_n(n, PairProfileField::Samples),
                full.iter().take(n).cloned().collect::<Vec<_>>()
            );
        }
    }
}
