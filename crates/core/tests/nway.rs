//! End-to-end N-way sampling: more tags recover sampling rate lost to
//! tag dead time, and the estimates stay unbiased at every width.

use profileme_core::{NWayConfig, ProfileMeConfig, Session};
use profileme_isa::{Cond, Program, ProgramBuilder, Reg};

/// A pointer-ish loop with a long-latency body so sampled instructions
/// stay in flight a while (maximizing single-tag dead time).
fn slow_loop(trips: i64) -> Program {
    let mut b = ProgramBuilder::new();
    b.function("main");
    b.load_imm(Reg::R9, trips);
    b.load_imm(Reg::R1, 977);
    b.load_imm(Reg::R2, 3);
    let top = b.label("top");
    b.fdiv(Reg::R1, Reg::R1, Reg::R2);
    b.addi(Reg::R1, Reg::R1, 5);
    b.addi(Reg::R3, Reg::R3, 1);
    b.addi(Reg::R9, Reg::R9, -1);
    b.cond_br(Cond::Ne0, Reg::R9, top);
    b.halt();
    b.build().unwrap()
}

#[test]
fn more_ways_recover_sampling_rate() {
    let p = slow_loop(30_000);
    let nominal = 8u64;
    let mut achieved = Vec::new();
    for ways in [1usize, 4] {
        let run = Session::builder(p.clone())
            .nway_sampling(NWayConfig {
                ways,
                mean_interval: nominal,
                buffer_depth: 32,
                ..NWayConfig::default()
            })
            .build()
            .unwrap()
            .profile_nway()
            .unwrap();
        achieved.push(run.samples.len() as f64 / run.stats.fetched as f64);
    }
    assert!(
        achieved[1] > 1.5 * achieved[0],
        "4 ways should sample much faster: {achieved:?}"
    );
}

#[test]
fn nway_estimates_remain_unbiased() {
    let p = slow_loop(30_000);
    let run = Session::builder(p.clone())
        .nway_sampling(NWayConfig {
            ways: 4,
            mean_interval: 16,
            buffer_depth: 32,
            ..NWayConfig::default()
        })
        .build()
        .unwrap()
        .profile_nway()
        .unwrap();
    // Every loop-body instruction retired the same number of times.
    for (pc, prof) in run.db.iter() {
        if prof.retired < 100 {
            continue;
        }
        let actual = run.stats.at(&p, pc).unwrap().retired as f64;
        let ratio = run.db.estimated_retires(pc).value() / actual;
        let sigma = 1.0 / (prof.retired as f64).sqrt();
        assert!(
            (ratio - 1.0).abs() < 5.0 * sigma + 0.05,
            "pc {pc}: ratio {ratio:.3} with {} samples",
            prof.retired
        );
    }
}

#[test]
fn one_way_nway_equals_single_hardware_statistically() {
    let session = Session::builder(slow_loop(20_000))
        .sampling(ProfileMeConfig {
            mean_interval: 32,
            buffer_depth: 8,
            ..Default::default()
        })
        .nway_sampling(NWayConfig {
            ways: 1,
            mean_interval: 32,
            buffer_depth: 8,
            ..Default::default()
        })
        .build()
        .unwrap();
    let single = session.profile_single().unwrap();
    let nway = session.profile_nway().unwrap();
    // Both drop on a busy tag, so the achieved rates agree closely and
    // the per-instruction sample *fractions* agree statistically.
    let r1 = single.samples.len() as f64;
    let r2 = nway.samples.len() as f64;
    assert!(
        (r1 / r2 - 1.0).abs() < 0.25,
        "rates should match: {r1} vs {r2}"
    );
    for (pc, prof) in single.db.iter() {
        if prof.samples < 200 {
            continue;
        }
        let f1 = prof.samples as f64 / single.db.total_samples as f64;
        let f2 = nway.db.at(pc).samples as f64 / nway.db.total_samples.max(1) as f64;
        assert!(
            (f1 - f2).abs() < 0.25 * f1,
            "sample shares diverge at {pc}: {f1:.4} vs {f2:.4}"
        );
    }
}
