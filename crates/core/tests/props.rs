//! Property tests for ProfileMe: estimator algebra, overlap-definition
//! invariants, buffer behaviour, and an end-to-end unbiasedness check of
//! hardware sampling against simulator ground truth.

use profileme_cfg::BranchHistory;
use profileme_core::{
    estimate_total, useful_overlap, Estimate, OverlapKind, ProfileMeConfig, SampleBuffer, Session,
};
use profileme_isa::{Cond, Pc, ProgramBuilder, Reg};
use profileme_uarch::{CompletedSample, EventSet, TagId, Timestamps};
use proptest::prelude::*;

fn arb_sample() -> impl Strategy<Value = CompletedSample> {
    (0u64..1000, 0u64..100, 0u64..100, 0u64..100, any::<bool>()).prop_map(
        |(fetched, d_issue, d_rr, d_ret, retired)| {
            let issued = fetched + d_issue;
            let rr = issued + 1 + d_rr;
            CompletedSample {
                tag: TagId(0),
                seq: 0,
                pc: Pc::new(0x1000),
                context: 1,
                class: profileme_isa::OpClass::IntAlu,
                events: EventSet::new(),
                retired,
                eff_addr: None,
                taken: None,
                history: BranchHistory::new(),
                timestamps: Timestamps {
                    fetched,
                    mapped: Some(fetched + 2),
                    data_ready: Some(issued),
                    issued: Some(issued),
                    retire_ready: Some(rr),
                    retired: retired.then_some(rr + d_ret),
                },
                latencies: None,
                mem_latency: None,
            }
        },
    )
}

proptest! {
    /// kS is linear in k and the CI always contains the point estimate.
    #[test]
    fn estimate_algebra(k in 0u64..10_000, s in 1u64..10_000, z in 0.0f64..5.0) {
        let e = Estimate { samples: k, interval: s };
        prop_assert_eq!(e.value(), estimate_total(k, s));
        prop_assert_eq!(e.value(), (k * s) as f64);
        let (lo, hi) = e.confidence_interval(z);
        prop_assert!(lo <= e.value() && e.value() <= hi);
        prop_assert!(lo >= 0.0);
    }

    /// BothInFlight and BothExecuting are symmetric relations.
    #[test]
    fn symmetric_overlaps(a in arb_sample(), b in arb_sample()) {
        for kind in [OverlapKind::BothInFlight, OverlapKind::BothExecuting] {
            prop_assert_eq!(useful_overlap(kind, &a, &b), useful_overlap(kind, &b, &a));
        }
    }

    /// UsefulIssue implies BothInFlight (an instruction issuing inside
    /// I's in-progress window is necessarily in flight with I).
    #[test]
    fn useful_issue_implies_in_flight(a in arb_sample(), b in arb_sample()) {
        if useful_overlap(OverlapKind::UsefulIssue, &a, &b) {
            prop_assert!(useful_overlap(OverlapKind::BothInFlight, &a, &b));
        }
    }

    /// A buffer of depth d reports full exactly on the d-th push and
    /// drains in FIFO order.
    #[test]
    fn buffer_fifo(depth in 1usize..20, n in 1usize..20) {
        let n = n.min(depth);
        let mut buf = SampleBuffer::new(depth);
        for i in 0..n {
            let full = buf.push(i);
            prop_assert_eq!(full, i + 1 == depth);
        }
        prop_assert_eq!(buf.drain(), (0..n).collect::<Vec<_>>());
        prop_assert!(buf.is_empty());
    }
}

/// Drives [`PairedHardware`] with an arbitrary interleaving of fetch
/// opportunities and out-of-order completions, checking its structural
/// invariants: at most two outstanding tags, tags in {0, 1}, every
/// delivered pair complete with a minor distance inside the window and a
/// cycle distance matching the fetch timestamps.
mod paired_hw {
    use super::*;
    use profileme_core::{PairedConfig, PairedHardware};
    use profileme_uarch::{FetchOpportunity, ProfilingHardware, TagDecision};

    fn opp(cycle: u64) -> FetchOpportunity {
        FetchOpportunity {
            cycle,
            slot: 0,
            pc: Some(Pc::new(0x1000)),
            inst: Some(profileme_isa::Inst::nop()),
            on_predicted_path: true,
            seq: Some(cycle),
        }
    }

    fn completed(tag: TagId, fetched: u64) -> CompletedSample {
        CompletedSample {
            tag,
            seq: fetched,
            pc: Pc::new(0x1000),
            context: 1,
            class: profileme_isa::OpClass::Nop,
            events: EventSet::new(),
            retired: true,
            eff_addr: None,
            taken: None,
            history: BranchHistory::new(),
            timestamps: Timestamps {
                fetched,
                ..Timestamps::default()
            },
            latencies: None,
            mem_latency: None,
        }
    }

    proptest! {
        #[test]
        fn paired_hardware_invariants(
            major in 1u64..8,
            window in 1u64..16,
            // Each step: true = complete the oldest outstanding tag (if
            // any), false = present the next fetch opportunity.
            script in prop::collection::vec(any::<bool>(), 1..400),
        ) {
            let mut hw = PairedHardware::new(PairedConfig {
                mean_major_interval: major,
                window,
                randomize: true,
                buffer_depth: 2,
                ..PairedConfig::default()
            });
            let mut cycle = 0u64;
            let mut outstanding: Vec<(TagId, u64)> = Vec::new();
            let mut delivered = 0usize;
            for step in script {
                if step {
                    if !outstanding.is_empty() {
                        let (tag, fetched) = outstanding.remove(0);
                        hw.on_tagged_complete(&completed(tag, fetched));
                    }
                } else {
                    cycle += 1;
                    if let TagDecision::Tag(t) = hw.on_fetch_opportunity(&opp(cycle)) {
                        prop_assert!(t.0 <= 1, "tags are one bit-pair: {t:?}");
                        prop_assert!(
                            outstanding.iter().all(|(o, _)| *o != t),
                            "tag {t:?} reused while outstanding"
                        );
                        outstanding.push((t, cycle));
                        prop_assert!(outstanding.len() <= 2, "at most one pair in flight");
                    }
                }
                if hw.take_interrupt().is_some() {
                    for pair in hw.drain_pairs() {
                        delivered += 1;
                        prop_assert!(pair.is_complete());
                        prop_assert!((1..=window).contains(&pair.distance_instructions));
                        let (a, b) = (
                            pair.first.record.as_ref().expect("complete"),
                            pair.second.record.as_ref().expect("complete"),
                        );
                        prop_assert_eq!(
                            b.timestamps.fetched - a.timestamps.fetched,
                            pair.distance_cycles
                        );
                    }
                }
            }
            // Nothing is lost: outstanding + delivered + still-buffered
            // accounts for every selection that tagged something.
            let buffered = hw.drain_pairs().len();
            prop_assert!(delivered + buffered <= hw.pairs_selected() as usize + 1);
        }
    }
}

/// Merge algebra over random profiles: the sharded aggregation service
/// (`profileme-serve`) relies on per-PC accumulation being a sum, so
/// `PcProfile::merge` must be commutative and associative with the
/// default profile as identity.
mod merge_algebra {
    use super::*;
    use profileme_core::PcProfile;
    use profileme_uarch::LatencySums;

    fn arb_profile() -> impl Strategy<Value = PcProfile> {
        (
            (0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000),
            (0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000),
            (0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000),
            prop::collection::vec(0u64..100_000, 6),
        )
            .prop_map(|(a, b, c, lat)| PcProfile {
                samples: a.0,
                retired: a.1,
                aborted: a.2,
                icache_misses: a.3,
                itlb_misses: b.0,
                dcache_misses: b.1,
                dtlb_misses: b.2,
                l2_misses: b.3,
                taken: c.0,
                mispredicted: c.1,
                latency_samples: c.2,
                in_progress_sum: c.3,
                latency_sums: LatencySums {
                    fetch_to_map: lat[0],
                    map_to_data_ready: lat[1],
                    data_ready_to_issue: lat[2],
                    issue_to_retire_ready: lat[3],
                    retire_ready_to_retire: lat[4],
                    load_completion: lat[5],
                },
                mem_latency_sum: lat[0] ^ lat[5],
                mem_latency_samples: lat[1] % 97,
            })
    }

    proptest! {
        #[test]
        fn merge_is_commutative(a in arb_profile(), b in arb_profile()) {
            let mut ab = a;
            ab.merge(&b);
            let mut ba = b;
            ba.merge(&a);
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn merge_is_associative(
            a in arb_profile(),
            b in arb_profile(),
            c in arb_profile(),
        ) {
            // (a ∪ b) ∪ c
            let mut left = a;
            left.merge(&b);
            left.merge(&c);
            // a ∪ (b ∪ c)
            let mut bc = b;
            bc.merge(&c);
            let mut right = a;
            right.merge(&bc);
            prop_assert_eq!(left, right);
        }

        #[test]
        fn empty_profile_is_the_identity(a in arb_profile()) {
            let mut merged = a;
            merged.merge(&PcProfile::default());
            prop_assert_eq!(merged, a);
            let mut from_empty = PcProfile::default();
            from_empty.merge(&a);
            prop_assert_eq!(from_empty, a);
        }

        #[test]
        fn delta_inverts_merge(a in arb_profile(), b in arb_profile()) {
            let mut sum = a;
            sum.merge(&b);
            prop_assert_eq!(sum.checked_sub(&a), Some(b));
            prop_assert_eq!(sum.checked_sub(&sum), Some(PcProfile::default()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// End to end: sampled fetch estimates track the simulator's exact
    /// per-PC fetch counts within a few standard errors, across random
    /// intervals and buffer depths.
    #[test]
    fn sampling_is_unbiased_end_to_end(
        interval in 20u64..120,
        depth in 1usize..8,
        trips in 4_000i64..8_000,
    ) {
        let mut b = ProgramBuilder::new();
        b.function("main");
        b.load_imm(Reg::R9, trips);
        let top = b.label("top");
        b.addi(Reg::R1, Reg::R1, 1);
        b.addi(Reg::R2, Reg::R2, 1);
        b.addi(Reg::R9, Reg::R9, -1);
        b.cond_br(Cond::Ne0, Reg::R9, top);
        b.halt();
        let p = b.build().unwrap();
        let cfg = ProfileMeConfig {
            mean_interval: interval,
            buffer_depth: depth,
            ..ProfileMeConfig::default()
        };
        let run = Session::builder(p.clone())
            .sampling(cfg)
            .build()
            .unwrap()
            .profile_single()
            .unwrap();
        // Sum of per-PC fetch estimates ~ total fetched.
        let est_total: f64 = p
            .iter()
            .map(|(pc, _)| run.db.estimated_fetches(pc).value())
            .sum();
        let actual = run.stats.fetched as f64;
        let k = run.db.total_samples as f64;
        prop_assert!(k > 20.0, "too few samples ({k}) to test");
        let sigma = actual / k.sqrt();
        prop_assert!(
            (est_total - actual).abs() < 4.0 * sigma,
            "estimated {est_total} vs actual {actual} (sigma {sigma:.0})"
        );
    }
}
