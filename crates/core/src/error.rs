//! The typed error surface of the profiling software.
//!
//! Everything the [`Session`](crate::Session) API and the database
//! snapshot/merge layer can fail with is one enum, so callers match on
//! causes instead of downcasting `Box<dyn Error>`.

use profileme_uarch::SimError;
use std::error::Error;
use std::fmt;

/// Any failure of the profiling software layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProfileError {
    /// A configuration value was rejected at [`build()`] time (for
    /// example a zero sampling interval, which would select every
    /// fetched instruction and never re-arm meaningfully).
    ///
    /// [`build()`]: crate::SessionBuilder::build
    Config {
        /// Which knob was invalid.
        field: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// The pipeline simulator failed underneath the profiling run.
    Sim(SimError),
    /// A profile snapshot failed to serialize or deserialize.
    Snapshot {
        /// What the serializer reported.
        reason: String,
    },
    /// Two databases could not be merged or differenced because they
    /// describe different programs or sampling setups.
    Mismatch {
        /// Which property disagreed.
        what: &'static str,
    },
    /// A shard aggregator worker died and could not be recovered: it
    /// panicked outside supervision, exhausted its recovery budget, or
    /// failed to rebuild from its checkpoint.
    WorkerCrashed {
        /// Which shard's worker crashed.
        shard: usize,
    },
    /// A deadline-bounded operation (`ingest_deadline`,
    /// `snapshot_deadline`, `shutdown_deadline`) ran out of budget
    /// before the service made the required progress.
    DeadlineExceeded {
        /// Which operation timed out.
        what: &'static str,
        /// The deadline that was exceeded, in milliseconds.
        millis: u64,
    },
    /// The service is (or was) running below full fidelity: the
    /// overload controller downshifted, or samples were lost to drops,
    /// thinning, shedding, or worker crashes.
    Degraded {
        /// The degradation level (0 = full fidelity, 1 = sampled,
        /// 2 = shedding).
        level: u8,
        /// Samples lost across all lossy paths.
        lost: u64,
    },
    /// The durable profile store failed: an I/O error on the segment
    /// log or a snapshot image, or an on-disk layout the recovery
    /// path refuses to trust (for example a torn record followed by
    /// later segments).
    Store {
        /// What the store layer reported.
        reason: String,
        /// The file the failure was observed in, when one is known.
        path: Option<std::path::PathBuf>,
        /// The byte offset within `path` where the failure was
        /// observed (for torn records, the end of the last valid
        /// record), when one is known.
        offset: Option<u64>,
    },
    /// The fleet TCP front-end failed: a connect, read, or write error
    /// the retry policy could not absorb, or a malformed protocol
    /// frame.
    Net {
        /// What the network layer reported.
        reason: String,
    },
}

impl ProfileError {
    /// Convenience constructor for configuration rejections.
    pub fn config(field: &'static str, reason: impl Into<String>) -> ProfileError {
        ProfileError::Config {
            field,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for store failures with no file context.
    pub fn store(reason: impl Into<String>) -> ProfileError {
        ProfileError::Store {
            reason: reason.into(),
            path: None,
            offset: None,
        }
    }

    /// Convenience constructor for network failures.
    pub fn net(reason: impl Into<String>) -> ProfileError {
        ProfileError::Net {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for store failures pinned to a file
    /// and, optionally, a byte offset within it.
    pub fn store_at(
        reason: impl Into<String>,
        path: impl Into<std::path::PathBuf>,
        offset: Option<u64>,
    ) -> ProfileError {
        ProfileError::Store {
            reason: reason.into(),
            path: Some(path.into()),
            offset,
        }
    }
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Config { field, reason } => {
                write!(f, "invalid configuration: `{field}` {reason}")
            }
            ProfileError::Sim(e) => write!(f, "simulation failed: {e}"),
            ProfileError::Snapshot { reason } => write!(f, "profile snapshot failed: {reason}"),
            ProfileError::Mismatch { what } => {
                write!(f, "databases are incompatible: {what} differs")
            }
            ProfileError::WorkerCrashed { shard } => {
                write!(f, "shard {shard} worker crashed and was not recovered")
            }
            ProfileError::DeadlineExceeded { what, millis } => {
                write!(f, "`{what}` exceeded its {millis} ms deadline")
            }
            ProfileError::Degraded { level, lost } => {
                write!(f, "service degraded to level {level} ({lost} samples lost)")
            }
            ProfileError::Store {
                reason,
                path,
                offset,
            } => {
                write!(f, "durable store failed: {reason}")?;
                if let Some(p) = path {
                    write!(f, " in {}", p.display())?;
                }
                if let Some(o) = offset {
                    write!(f, " at byte offset {o}")?;
                }
                Ok(())
            }
            ProfileError::Net { reason } => {
                write!(f, "fleet network failed: {reason}")
            }
        }
    }
}

impl Error for ProfileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProfileError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ProfileError {
    fn from(e: SimError) -> ProfileError {
        ProfileError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_cause() {
        let e = ProfileError::config("mean_interval", "must be at least 1 (got 0)");
        assert!(e.to_string().contains("mean_interval"));
        let e = ProfileError::from(SimError::CycleLimit { limit: 7 });
        assert!(e.to_string().contains("7 cycles"));
        assert!(Error::source(&e).is_some());
        let e = ProfileError::Mismatch { what: "interval" };
        assert!(e.to_string().contains("interval"));
        let e = ProfileError::WorkerCrashed { shard: 3 };
        assert!(e.to_string().contains("shard 3"));
        let e = ProfileError::DeadlineExceeded {
            what: "snapshot",
            millis: 250,
        };
        assert!(e.to_string().contains("snapshot") && e.to_string().contains("250"));
        let e = ProfileError::Degraded { level: 2, lost: 41 };
        assert!(e.to_string().contains("level 2") && e.to_string().contains("41"));
        let e = ProfileError::store("segment vanished");
        assert!(e.to_string().contains("segment vanished"));
        let e = ProfileError::store_at("record CRC mismatch", "wal-00000003.seg", Some(96));
        let shown = e.to_string();
        assert!(
            shown.contains("wal-00000003.seg") && shown.contains("offset 96"),
            "path and offset surfaced: {shown}"
        );
    }
}
