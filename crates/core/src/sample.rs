//! Software-visible sample records — what the interrupt handler reads out
//! of the Profile Registers.

use profileme_uarch::CompletedSample;
use serde::{Deserialize, Serialize};

/// One instruction sample.
///
/// When instructions are selected by counting *fetch opportunities*
/// (§4.1.1), the selected slot may hold no instruction on the predicted
/// control path; such samples are delivered with `record == None` so
/// software can measure the useful-sampling-rate cost of that selection
/// scheme.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sample {
    /// The profile-register contents, or `None` for an empty selected
    /// slot.
    pub record: Option<CompletedSample>,
    /// Cycle at which the selection fired.
    pub selected_cycle: u64,
}

impl Sample {
    /// Whether the sample carries an instruction record.
    pub fn is_valid(&self) -> bool {
        self.record.is_some()
    }

    /// Whether the sampled instruction retired.
    pub fn retired(&self) -> bool {
        self.record.as_ref().is_some_and(|r| r.retired)
    }
}

/// A paired sample (§4.2): two potentially concurrent instructions plus
/// the fetch latency between them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairedSample {
    /// The first selected instruction.
    pub first: Sample,
    /// The second selected instruction (fetched `distance` instructions
    /// later).
    pub second: Sample,
    /// The minor interval actually used: fetched instructions between the
    /// two selections (1..=W).
    pub distance_instructions: u64,
    /// The inter-pair fetch latency register: cycles between the two
    /// selections.
    pub distance_cycles: u64,
}

impl PairedSample {
    /// Whether both halves carry instruction records.
    pub fn is_complete(&self) -> bool {
        self.first.is_valid() && self.second.is_valid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_sample_predicates() {
        let s = Sample {
            record: None,
            selected_cycle: 42,
        };
        assert!(!s.is_valid());
        assert!(!s.retired());
    }
}
