//! The [`Session`] API: one validated, named-setter entry point for
//! every kind of profiling run.
//!
//! The original drivers (`run_single`, `run_nway`, `run_paired`) took
//! five positional arguments each; call sites read as a row of
//! unlabelled commas and nothing ever checked the configuration, so a
//! zero sampling interval sailed through silently. A [`SessionBuilder`]
//! names every knob, backs them all with defaults, validates once at
//! [`build()`](SessionBuilder::build), and the built [`Session`] offers
//! one terminal method per run kind:
//!
//! ```
//! use profileme_core::{ProfileMeConfig, Session};
//! use profileme_isa::{Cond, ProgramBuilder, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! b.function("main");
//! b.load_imm(Reg::R9, 2_000);
//! let top = b.label("top");
//! b.addi(Reg::R9, Reg::R9, -1);
//! b.cond_br(Cond::Ne0, Reg::R9, top);
//! b.halt();
//!
//! let session = Session::builder(b.build()?)
//!     .sampling(ProfileMeConfig { mean_interval: 64, ..Default::default() })
//!     .build()?;
//! let run = session.profile_single()?;
//! let truth = session.ground_truth()?;
//! assert!(run.samples.len() > 0);
//! // Sampling interrupts cost cycles but never change what executes.
//! assert_eq!(run.stats.retired, truth.stats.retired);
//! # Ok(())
//! # }
//! ```
//!
//! A `Session` borrows nothing and keeps its program, so one session can
//! drive repeated runs (ground truth next to sampled, or the same
//! workload across snapshots).

use crate::error::ProfileError;
use crate::hw::{NWayConfig, PairedConfig, ProfileMeConfig};
use crate::sw::driver::{self, HardwareRun, PairedRun, SingleRun};
use profileme_isa::{Memory, Program};
use profileme_uarch::{InterruptEvent, NullHardware, PipelineConfig, ProfilingHardware};

/// Builder for a [`Session`]: named setters over defaults, validation at
/// [`build()`](SessionBuilder::build).
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    program: Program,
    memory: Option<Memory>,
    pipeline: PipelineConfig,
    sampling: ProfileMeConfig,
    nway: NWayConfig,
    paired: PairedConfig,
    max_cycles: u64,
}

impl SessionBuilder {
    /// Starts a builder for `program` with every knob at its default:
    /// no pre-initialized memory, the default pipeline, the default
    /// sampling configurations, and an unbounded cycle budget.
    pub fn new(program: Program) -> SessionBuilder {
        SessionBuilder {
            program,
            memory: None,
            pipeline: PipelineConfig::default(),
            sampling: ProfileMeConfig::default(),
            nway: NWayConfig::default(),
            paired: PairedConfig::default(),
            max_cycles: u64::MAX,
        }
    }

    /// Pre-initializes data memory (pointer-chasing workloads carry
    /// their heap image here).
    pub fn memory(mut self, memory: Memory) -> SessionBuilder {
        self.memory = Some(memory);
        self
    }

    /// The simulated machine configuration.
    pub fn pipeline(mut self, pipeline: PipelineConfig) -> SessionBuilder {
        self.pipeline = pipeline;
        self
    }

    /// Single-instruction sampling configuration, used by
    /// [`Session::profile_single`].
    pub fn sampling(mut self, sampling: ProfileMeConfig) -> SessionBuilder {
        self.sampling = sampling;
        self
    }

    /// N-way sampling configuration, used by [`Session::profile_nway`].
    pub fn nway_sampling(mut self, nway: NWayConfig) -> SessionBuilder {
        self.nway = nway;
        self
    }

    /// Paired sampling configuration, used by
    /// [`Session::profile_paired`].
    pub fn paired_sampling(mut self, paired: PairedConfig) -> SessionBuilder {
        self.paired = paired;
        self
    }

    /// Cycle budget for each run started from the session (default:
    /// unbounded).
    pub fn max_cycles(mut self, max_cycles: u64) -> SessionBuilder {
        self.max_cycles = max_cycles;
        self
    }

    /// Validates every configuration and seals the session.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Config`] if any sampling configuration is
    /// invalid — notably the zero-interval footgun the positional
    /// drivers accepted silently — or if `max_cycles` is zero.
    pub fn build(self) -> Result<Session, ProfileError> {
        self.sampling.validate()?;
        self.nway.validate()?;
        self.paired.validate()?;
        if self.max_cycles == 0 {
            return Err(ProfileError::config(
                "max_cycles",
                "must be at least 1 (got 0)",
            ));
        }
        Ok(Session { inner: self })
    }
}

/// A validated profiling session: a program, its machine, and sampling
/// configurations, ready to run any of the paper's profiling modes.
///
/// Built by [`Session::builder`]; see the [module docs](self) for a
/// worked example.
#[derive(Debug, Clone)]
pub struct Session {
    inner: SessionBuilder,
}

impl Session {
    /// Starts a [`SessionBuilder`] for `program`.
    pub fn builder(program: Program) -> SessionBuilder {
        SessionBuilder::new(program)
    }

    /// The program this session profiles.
    pub fn program(&self) -> &Program {
        &self.inner.program
    }

    /// The machine configuration runs execute on.
    pub fn pipeline(&self) -> &PipelineConfig {
        &self.inner.pipeline
    }

    /// The single-instruction sampling configuration.
    pub fn sampling(&self) -> &ProfileMeConfig {
        &self.inner.sampling
    }

    /// The paired sampling configuration.
    pub fn paired_sampling(&self) -> &PairedConfig {
        &self.inner.paired
    }

    /// Runs the program under single-instruction ProfileMe sampling.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Sim`] if the cycle budget is exhausted.
    pub fn profile_single(&self) -> Result<SingleRun, ProfileError> {
        let s = &self.inner;
        driver::single(
            s.program.clone(),
            s.memory.clone(),
            s.pipeline.clone(),
            s.sampling,
            s.max_cycles,
        )
        .map_err(Into::into)
    }

    /// Runs the program under N-way sampling (several simultaneously
    /// profiled instructions).
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Sim`] if the cycle budget is exhausted.
    pub fn profile_nway(&self) -> Result<SingleRun, ProfileError> {
        let s = &self.inner;
        driver::nway(
            s.program.clone(),
            s.memory.clone(),
            s.pipeline.clone(),
            s.nway,
            s.max_cycles,
        )
        .map_err(Into::into)
    }

    /// Runs the program under paired sampling (§4.2).
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Sim`] if the cycle budget is exhausted.
    pub fn profile_paired(&self) -> Result<PairedRun, ProfileError> {
        let s = &self.inner;
        driver::paired(
            s.program.clone(),
            s.memory.clone(),
            s.pipeline.clone(),
            s.paired,
            s.max_cycles,
        )
        .map_err(Into::into)
    }

    /// Runs the program with no profiling hardware attached: the exact,
    /// perturbation-free statistics estimates are judged against.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Sim`] if the cycle budget is exhausted.
    pub fn ground_truth(&self) -> Result<HardwareRun<NullHardware>, ProfileError> {
        self.run(NullHardware, |_, _| {})
    }

    /// Runs the program over arbitrary profiling hardware — the generic
    /// seam under every specialized mode, and how the event-counter
    /// baseline (`profileme-counters`) rides the same session.
    ///
    /// `handler` services each profiling interrupt with mutable access
    /// to the hardware; pass a no-op for hardware that never interrupts.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Sim`] if the cycle budget is exhausted.
    pub fn run<H, F>(&self, hardware: H, handler: F) -> Result<HardwareRun<H>, ProfileError>
    where
        H: ProfilingHardware,
        F: FnMut(InterruptEvent, &mut H),
    {
        let s = &self.inner;
        driver::run_hardware(
            s.program.clone(),
            s.memory.clone(),
            s.pipeline.clone(),
            hardware,
            s.max_cycles,
            handler,
        )
        .map_err(Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profileme_isa::{Cond, ProgramBuilder, Reg};

    fn loop_program(trips: i64) -> Program {
        let mut b = ProgramBuilder::new();
        b.function("main");
        b.load_imm(Reg::R9, trips);
        let top = b.label("top");
        b.addi(Reg::R9, Reg::R9, -1);
        b.cond_br(Cond::Ne0, Reg::R9, top);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn zero_interval_is_rejected_at_build() {
        let err = Session::builder(loop_program(10))
            .sampling(ProfileMeConfig {
                mean_interval: 0,
                ..Default::default()
            })
            .build()
            .unwrap_err();
        assert!(
            matches!(
                err,
                ProfileError::Config {
                    field: "mean_interval",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn zero_paired_intervals_are_rejected_at_build() {
        for (paired, field) in [
            (
                PairedConfig {
                    mean_major_interval: 0,
                    ..Default::default()
                },
                "mean_major_interval",
            ),
            (
                PairedConfig {
                    window: 0,
                    ..Default::default()
                },
                "window",
            ),
        ] {
            let err = Session::builder(loop_program(10))
                .paired_sampling(paired)
                .build()
                .unwrap_err();
            assert!(
                matches!(&err, ProfileError::Config { field: f, .. } if *f == field),
                "{err}"
            );
        }
    }

    #[test]
    fn zero_buffer_ways_and_budget_are_rejected() {
        let p = loop_program(10);
        assert!(Session::builder(p.clone())
            .sampling(ProfileMeConfig {
                buffer_depth: 0,
                ..Default::default()
            })
            .build()
            .is_err());
        assert!(Session::builder(p.clone())
            .nway_sampling(NWayConfig {
                ways: 0,
                ..Default::default()
            })
            .build()
            .is_err());
        assert!(Session::builder(p).max_cycles(0).build().is_err());
    }

    #[test]
    fn defaults_build_and_all_terminals_run() {
        let session = Session::builder(loop_program(2_000))
            .sampling(ProfileMeConfig {
                mean_interval: 32,
                buffer_depth: 4,
                ..Default::default()
            })
            .paired_sampling(PairedConfig {
                mean_major_interval: 64,
                window: 16,
                ..Default::default()
            })
            .build()
            .expect("defaults are valid");
        let single = session.profile_single().unwrap();
        assert!(!single.samples.is_empty());
        let nway = session.profile_nway().unwrap();
        assert!(!nway.samples.is_empty());
        let paired = session.profile_paired().unwrap();
        assert!(!paired.pairs.is_empty());
        let truth = session.ground_truth().unwrap();
        assert_eq!(truth.stats.interrupts, 0);
    }

    #[test]
    fn cycle_budget_surfaces_as_sim_error() {
        let err = Session::builder(loop_program(1_000_000))
            .max_cycles(50)
            .build()
            .unwrap()
            .profile_single()
            .unwrap_err();
        assert!(matches!(err, ProfileError::Sim(_)), "{err}");
    }

    #[test]
    fn session_runs_are_repeatable() {
        let session = Session::builder(loop_program(1_000))
            .sampling(ProfileMeConfig {
                mean_interval: 32,
                ..Default::default()
            })
            .build()
            .unwrap();
        let a = session.profile_single().unwrap();
        let b = session.profile_single().unwrap();
        assert_eq!(a.samples, b.samples, "sessions are reusable and pure");
    }
}
