//! # profileme-core
//!
//! The primary contribution of *"ProfileMe: Hardware Support for
//! Instruction-Level Profiling on Out-of-Order Processors"* (Dean, Hicks,
//! Waldspurger, Weihl, Chrysos — MICRO-30, 1997), reproduced in full:
//!
//! * **Hardware** (§4): the Fetched Instruction Counter that randomly
//!   selects instructions ([`SelectionMode`], [`IntervalGenerator`]), the
//!   ProfileMe tag that follows a selected instruction through the
//!   pipeline, the Profile Registers that record its PC, events,
//!   addresses, branch history, and per-stage latencies
//!   ([`ProfileMeHardware`]), *paired sampling* with major/minor
//!   intervals and an inter-pair fetch latency register
//!   ([`PairedHardware`]), and sample buffering to amortize interrupt
//!   cost ([`SampleBuffer`]).
//! * **Software** (§5): the [`Session`] builder over the sampling
//!   drivers, a compact incrementally aggregated — and *mergeable* —
//!   profile database ([`ProfileDatabase`], [`PairProfileDatabase`]),
//!   statistical estimators with convergence behaviour
//!   ([`Estimate`]), concurrency metrics over paired samples including
//!   *wasted issue slots* ([`wasted_issue_slots`], [`OverlapKind`]), and
//!   path profiling from branch-history bits ([`PathProfiler`]).
//!
//! The hardware attaches to the out-of-order pipeline simulator in
//! [`profileme_uarch`] through its
//! [`ProfilingHardware`](profileme_uarch::ProfilingHardware) seam — the
//! same seam the event-counter baseline (`profileme-counters`) uses, so
//! comparisons run on identical machines.
//!
//! # Example: find the D-cache-missing instruction
//!
//! ```
//! use profileme_core::{ProfileMeConfig, Session};
//! use profileme_isa::{Cond, ProgramBuilder, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A loop whose load strides through memory, missing often.
//! let mut b = ProgramBuilder::new();
//! b.function("main");
//! b.load_imm(Reg::R9, 4000);
//! b.load_imm(Reg::R12, 0x100000);
//! let top = b.label("top");
//! let load_pc = b.current_pc();
//! b.load(Reg::R1, Reg::R12, 0);
//! b.addi(Reg::R12, Reg::R12, 512);
//! b.addi(Reg::R9, Reg::R9, -1);
//! b.cond_br(Cond::Ne0, Reg::R9, top);
//! b.halt();
//!
//! let run = Session::builder(b.build()?)
//!     .sampling(ProfileMeConfig { mean_interval: 64, ..Default::default() })
//!     .build()?
//!     .profile_single()?;
//!
//! // The load dominates the sampled D-cache misses.
//! let (worst_pc, _) = run
//!     .db
//!     .iter()
//!     .max_by_key(|(_, p)| p.dcache_misses)
//!     .expect("samples were collected");
//! assert_eq!(worst_pc, load_pc);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod hw;
mod sample;
mod session;
mod sw;

pub use error::ProfileError;
pub use hw::{
    IntervalGenerator, NWayConfig, NWayHardware, PairedConfig, PairedHardware, ProfileMeConfig,
    ProfileMeHardware, SampleBuffer, SelectionMode,
};
pub use sample::{PairedSample, Sample};
pub use session::{Session, SessionBuilder};
pub use sw::{
    confidence_interval, estimate_pair_metric, estimate_total, expected_cov,
    instructions_retired_around, neighborhood_ipc, pipeline_population, procedure_summaries,
    run_ground_truth, run_hardware, useful_overlap, wasted_issue_slots, Estimate, HardwareRun,
    OverlapKind, PairMetric, PairProfileDatabase, PairProfileField, PairedRun, PathProfiler,
    PathScheme, PcPairProfile, PcProfile, ProcedureSummary, ProfileDatabase, ProfileField,
    ReconstructionOutcome, SampleCollector, SingleRun, StagePopulation, TopNIndex, WastedSlots,
    WireFormat,
};
