//! Sampling drivers: run a program under ProfileMe hardware, field the
//! interrupts, and aggregate samples into a profile database.

use crate::hw::{
    NWayConfig, NWayHardware, PairedConfig, PairedHardware, ProfileMeConfig, ProfileMeHardware,
};
use crate::sw::database::{PairProfileDatabase, ProfileDatabase};
use crate::{PairedSample, Sample};
use profileme_isa::{ArchState, Memory, Program};
use profileme_uarch::{Pipeline, PipelineConfig, SimError, SimStats};

/// Result of a single-instruction sampling run.
#[derive(Debug, Clone)]
pub struct SingleRun {
    /// Aggregated per-PC profile.
    pub db: ProfileDatabase,
    /// Every sample delivered, in delivery order.
    pub samples: Vec<Sample>,
    /// Exact simulator statistics (ground truth for validation).
    pub stats: SimStats,
    /// Selections that landed on empty slots.
    pub invalid_selections: u64,
    /// Cycles simulated.
    pub cycles: u64,
}

/// Result of a paired sampling run.
#[derive(Debug, Clone)]
pub struct PairedRun {
    /// Aggregated per-PC paired profile.
    pub db: PairProfileDatabase,
    /// Every pair delivered, in delivery order.
    pub pairs: Vec<PairedSample>,
    /// Exact simulator statistics.
    pub stats: SimStats,
    /// Cycles simulated.
    pub cycles: u64,
}

/// Runs `program` to completion under single-instruction sampling.
///
/// `memory` optionally pre-initializes data memory (pointer-chasing
/// workloads). The interrupt handler drains the hardware's sample buffer
/// into the database; a final drain collects any partial buffer.
///
/// # Errors
///
/// Returns [`SimError::CycleLimit`] if `max_cycles` is exhausted.
pub fn run_single(
    program: Program,
    memory: Option<Memory>,
    pipeline: PipelineConfig,
    sampling: ProfileMeConfig,
    max_cycles: u64,
) -> Result<SingleRun, SimError> {
    let oracle = match memory {
        Some(m) => ArchState::with_memory(&program, m),
        None => ArchState::new(&program),
    };
    let hw = ProfileMeHardware::new(sampling);
    let mut samples = Vec::new();
    let mut sim = Pipeline::with_oracle(program.clone(), pipeline, hw, oracle);
    sim.run_with(max_cycles, |_intr, hw| {
        samples.extend(hw.drain_samples());
    })?;
    samples.extend(sim.hardware_mut().drain_samples());

    // Calibrate the estimator with the *measured* average sampling rate
    // (events counted per selection), exactly as §5.1's "assume an
    // average sampling rate of one sample every S fetched instructions":
    // selection pauses (in-flight tagged instruction, full buffers,
    // interrupt handling) stretch the interval slightly beyond nominal.
    let counted = match sampling.selection {
        crate::hw::SelectionMode::FetchedInstructions => sim.stats().fetched,
        crate::hw::SelectionMode::FetchOpportunities => sim.stats().fetch_opportunities,
    };
    let selections = sim.hardware().selections();
    let interval = if selections > 0 {
        ((counted as f64 / selections as f64).round() as u64).max(1)
    } else {
        sampling.mean_interval
    };
    let mut db = ProfileDatabase::new(&program, interval);
    for s in &samples {
        db.add(s);
    }
    Ok(SingleRun {
        db,
        samples,
        invalid_selections: sim.hardware().invalid_selections(),
        cycles: sim.now(),
        stats: sim.stats().clone(),
    })
}

/// Runs `program` to completion under N-way sampling (several
/// simultaneously profiled instructions): the high-sampling-rate variant
/// of [`run_single`].
///
/// # Errors
///
/// Returns [`SimError::CycleLimit`] if `max_cycles` is exhausted.
pub fn run_nway(
    program: Program,
    memory: Option<Memory>,
    pipeline: PipelineConfig,
    sampling: NWayConfig,
    max_cycles: u64,
) -> Result<SingleRun, SimError> {
    let oracle = match memory {
        Some(m) => ArchState::with_memory(&program, m),
        None => ArchState::new(&program),
    };
    let hw = NWayHardware::new(sampling);
    let mut samples = Vec::new();
    let mut sim = Pipeline::with_oracle(program.clone(), pipeline, hw, oracle);
    sim.run_with(max_cycles, |_intr, hw| {
        samples.extend(hw.drain_samples());
    })?;
    samples.extend(sim.hardware_mut().drain_samples());
    let counted = match sampling.selection {
        crate::hw::SelectionMode::FetchedInstructions => sim.stats().fetched,
        crate::hw::SelectionMode::FetchOpportunities => sim.stats().fetch_opportunities,
    };
    let selections = sim.hardware().selections();
    let interval = if selections > 0 {
        ((counted as f64 / selections as f64).round() as u64).max(1)
    } else {
        sampling.mean_interval
    };
    let mut db = ProfileDatabase::new(&program, interval);
    for s in &samples {
        db.add(s);
    }
    Ok(SingleRun {
        db,
        samples,
        invalid_selections: sim.hardware().invalid_selections(),
        cycles: sim.now(),
        stats: sim.stats().clone(),
    })
}

/// Runs `program` to completion under paired sampling.
///
/// # Errors
///
/// Returns [`SimError::CycleLimit`] if `max_cycles` is exhausted.
pub fn run_paired(
    program: Program,
    memory: Option<Memory>,
    pipeline: PipelineConfig,
    sampling: PairedConfig,
    max_cycles: u64,
) -> Result<PairedRun, SimError> {
    let oracle = match memory {
        Some(m) => ArchState::with_memory(&program, m),
        None => ArchState::new(&program),
    };
    let hw = PairedHardware::new(sampling);
    let mut pairs = Vec::new();
    let mut sim = Pipeline::with_oracle(program.clone(), pipeline, hw, oracle);
    sim.run_with(max_cycles, |_intr, hw| {
        pairs.extend(hw.drain_pairs());
    })?;
    pairs.extend(sim.hardware_mut().drain_pairs());

    // Calibrate S (fetched instructions per pair) from the measured rate,
    // as for single sampling.
    let counted = match sampling.selection {
        crate::hw::SelectionMode::FetchedInstructions => sim.stats().fetched,
        crate::hw::SelectionMode::FetchOpportunities => sim.stats().fetch_opportunities,
    };
    let selected = sim.hardware().pairs_selected();
    let interval = if selected > 0 {
        ((counted as f64 / selected as f64).round() as u64).max(1)
    } else {
        sampling.mean_major_interval
    };
    let mut db = PairProfileDatabase::new(&program, interval, sampling.window);
    for p in &pairs {
        db.add(p);
    }
    Ok(PairedRun { db, pairs, cycles: sim.now(), stats: sim.stats().clone() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::SelectionMode;
    use profileme_isa::{Cond, ProgramBuilder, Reg};

    fn loop_program(trips: i64) -> Program {
        let mut b = ProgramBuilder::new();
        b.function("main");
        b.load_imm(Reg::R9, trips);
        b.load_imm(Reg::R12, 0x9000);
        let top = b.label("top");
        b.load(Reg::R1, Reg::R12, 0);
        b.add(Reg::R2, Reg::R2, Reg::R1);
        b.addi(Reg::R9, Reg::R9, -1);
        b.cond_br(Cond::Ne0, Reg::R9, top);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn single_sampling_collects_proportional_samples() {
        let p = loop_program(5000);
        let cfg = ProfileMeConfig {
            mean_interval: 100,
            buffer_depth: 4,
            ..ProfileMeConfig::default()
        };
        let run =
            run_single(p, None, PipelineConfig::default(), cfg, 100_000_000).unwrap();
        let fetched = run.stats.fetched;
        let expected = fetched / 100;
        let got = run.samples.len() as u64;
        assert!(
            got > expected / 2 && got < expected * 2,
            "expected about {expected} samples, got {got}"
        );
        assert_eq!(run.db.total_samples + run.db.invalid_samples, got);
    }

    #[test]
    fn estimates_converge_to_ground_truth() {
        let p = loop_program(40_000);
        let cfg = ProfileMeConfig {
            mean_interval: 50,
            buffer_depth: 8,
            ..ProfileMeConfig::default()
        };
        let run = run_single(p.clone(), None, PipelineConfig::default(), cfg, 100_000_000)
            .unwrap();
        // Check the retire estimate of the loop load.
        let load_pc = p.entry().advance(2);
        let actual = run.stats.at(&p, load_pc).unwrap().retired as f64;
        let est = run.db.estimated_retires(load_pc);
        let ratio = est.value() / actual;
        // ~600 matching samples: CoV ≈ 4%, so 12% is a 3-sigma bound.
        assert!(
            (0.88..1.12).contains(&ratio),
            "estimate {} vs actual {actual} (ratio {ratio:.3})",
            est.value()
        );
        assert!(est.cov() < 0.1);
    }

    #[test]
    fn paired_sampling_produces_complete_pairs() {
        let p = loop_program(20_000);
        let cfg = PairedConfig {
            mean_major_interval: 200,
            window: 32,
            buffer_depth: 4,
            ..PairedConfig::default()
        };
        let run = run_paired(p, None, PipelineConfig::default(), cfg, 100_000_000).unwrap();
        assert!(run.pairs.len() > 100, "got {} pairs", run.pairs.len());
        let complete = run.pairs.iter().filter(|p| p.is_complete()).count();
        assert!(complete * 10 >= run.pairs.len() * 9, "most pairs complete: {complete}");
        for pair in &run.pairs {
            assert!(pair.distance_instructions >= 1 && pair.distance_instructions <= 32);
            if let (Some(a), Some(b)) = (&pair.first.record, &pair.second.record) {
                assert_eq!(
                    b.timestamps.fetched - a.timestamps.fetched,
                    pair.distance_cycles,
                    "inter-pair latency register matches the fetch timestamps"
                );
            }
        }
        assert!(run.db.total_pairs > 0);
    }

    #[test]
    fn opportunity_selection_wastes_some_samples() {
        let p = loop_program(20_000);
        let cfg = ProfileMeConfig {
            mean_interval: 64,
            selection: SelectionMode::FetchOpportunities,
            buffer_depth: 8,
            ..ProfileMeConfig::default()
        };
        let run = run_single(p, None, PipelineConfig::default(), cfg, 100_000_000).unwrap();
        assert!(
            run.invalid_selections > 0,
            "opportunity counting must sometimes select empty slots"
        );
        assert_eq!(run.db.invalid_samples, run.invalid_selections);
    }
}
