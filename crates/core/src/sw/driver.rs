//! Sampling drivers: run a program under profiling hardware, field the
//! interrupts, and aggregate samples into a profile database.
//!
//! Every driver — ProfileMe single/N-way/paired sampling, the event
//! counter baseline, and the no-hardware ground-truth run — goes through
//! one generic seam, [`run_hardware`], parameterized over the
//! [`ProfilingHardware`] trait. The specialized drivers layer
//! calibration and database aggregation on top and are reached through
//! the [`Session`](crate::Session) builder.

use crate::hw::{
    NWayConfig, NWayHardware, PairedConfig, PairedHardware, ProfileMeConfig, ProfileMeHardware,
    SelectionMode,
};
use crate::sw::database::{PairProfileDatabase, ProfileDatabase};
use crate::{PairedSample, Sample};
use profileme_isa::{ArchState, Memory, Program};
use profileme_uarch::{
    InterruptEvent, NullHardware, Pipeline, PipelineConfig, ProfilingHardware, SimError, SimStats,
};

/// Outcome of driving a program over any profiling hardware: the
/// hardware itself (with whatever it accumulated), the exact simulator
/// statistics, and the cycle count.
#[derive(Debug, Clone)]
pub struct HardwareRun<H> {
    /// The profiling hardware, returned by value after the run.
    pub hardware: H,
    /// Exact simulator statistics (ground truth for validation).
    pub stats: SimStats,
    /// Cycles simulated.
    pub cycles: u64,
}

/// Runs `program` to completion over arbitrary profiling hardware —
/// the shared seam under every driver and experiment in the workspace.
///
/// `memory` optionally pre-initializes data memory (pointer-chasing
/// workloads). `handler` services each profiling interrupt with mutable
/// access to the hardware (reading profile registers, re-arming
/// counters); pass a no-op for hardware that never interrupts.
///
/// # Errors
///
/// Returns [`SimError::CycleLimit`] if `max_cycles` is exhausted.
pub fn run_hardware<H, F>(
    program: Program,
    memory: Option<Memory>,
    pipeline: PipelineConfig,
    hardware: H,
    max_cycles: u64,
    handler: F,
) -> Result<HardwareRun<H>, SimError>
where
    H: ProfilingHardware,
    F: FnMut(InterruptEvent, &mut H),
{
    let oracle = match memory {
        Some(m) => ArchState::with_memory(&program, m),
        None => ArchState::new(&program),
    };
    let mut sim = Pipeline::with_oracle(program, pipeline, hardware, oracle);
    sim.run_with(max_cycles, handler)?;
    let (hardware, stats, cycles) = sim.into_parts();
    Ok(HardwareRun {
        hardware,
        stats,
        cycles,
    })
}

/// Runs `program` with no profiling hardware attached: the exact,
/// perturbation-free statistics experiments judge estimates against.
///
/// # Errors
///
/// Returns [`SimError::CycleLimit`] if `max_cycles` is exhausted.
pub fn run_ground_truth(
    program: Program,
    memory: Option<Memory>,
    pipeline: PipelineConfig,
    max_cycles: u64,
) -> Result<HardwareRun<NullHardware>, SimError> {
    run_hardware(
        program,
        memory,
        pipeline,
        NullHardware,
        max_cycles,
        |_, _| {},
    )
}

/// Result of a single-instruction sampling run.
#[derive(Debug, Clone)]
pub struct SingleRun {
    /// Aggregated per-PC profile.
    pub db: ProfileDatabase,
    /// Every sample delivered, in delivery order.
    pub samples: Vec<Sample>,
    /// Exact simulator statistics (ground truth for validation).
    pub stats: SimStats,
    /// Selections that landed on empty slots.
    pub invalid_selections: u64,
    /// Cycles simulated.
    pub cycles: u64,
}

/// Result of a paired sampling run.
#[derive(Debug, Clone)]
pub struct PairedRun {
    /// Aggregated per-PC paired profile.
    pub db: PairProfileDatabase,
    /// Every pair delivered, in delivery order.
    pub pairs: Vec<PairedSample>,
    /// Exact simulator statistics.
    pub stats: SimStats,
    /// Cycles simulated.
    pub cycles: u64,
}

/// ProfileMe variants that accumulate single-instruction samples
/// (one-tag and N-way hardware), unified so one driver serves both.
pub trait SampleCollector: ProfilingHardware {
    /// Takes the buffered completed samples.
    fn drain_samples(&mut self) -> Vec<Sample>;
    /// Instructions (or fetch opportunities) selected for profiling.
    fn selections(&self) -> u64;
    /// Selections that landed on empty fetch slots.
    fn invalid_selections(&self) -> u64;
}

impl SampleCollector for ProfileMeHardware {
    fn drain_samples(&mut self) -> Vec<Sample> {
        ProfileMeHardware::drain_samples(self)
    }
    fn selections(&self) -> u64 {
        ProfileMeHardware::selections(self)
    }
    fn invalid_selections(&self) -> u64 {
        ProfileMeHardware::invalid_selections(self)
    }
}

impl SampleCollector for NWayHardware {
    fn drain_samples(&mut self) -> Vec<Sample> {
        NWayHardware::drain_samples(self)
    }
    fn selections(&self) -> u64 {
        NWayHardware::selections(self)
    }
    fn invalid_selections(&self) -> u64 {
        NWayHardware::invalid_selections(self)
    }
}

/// The events the selection counter was actually counting.
fn counted(stats: &SimStats, selection: SelectionMode) -> u64 {
    match selection {
        SelectionMode::FetchedInstructions => stats.fetched,
        SelectionMode::FetchOpportunities => stats.fetch_opportunities,
    }
}

/// Calibrates the estimator's interval from the *measured* average
/// sampling rate (events counted per selection), exactly as §5.1's
/// "assume an average sampling rate of one sample every S fetched
/// instructions": selection pauses (in-flight tagged instruction, full
/// buffers, interrupt handling) stretch the interval slightly beyond
/// nominal.
fn measured_interval(events: u64, selections: u64, nominal: u64) -> u64 {
    if selections > 0 {
        ((events as f64 / selections as f64).round() as u64).max(1)
    } else {
        nominal
    }
}

/// Shared driver under [`single`] and [`nway`]: drains any
/// [`SampleCollector`] and aggregates into a calibrated database.
fn run_collector<H: SampleCollector>(
    program: Program,
    memory: Option<Memory>,
    pipeline: PipelineConfig,
    hardware: H,
    selection: SelectionMode,
    nominal_interval: u64,
    max_cycles: u64,
) -> Result<SingleRun, SimError> {
    let mut samples = Vec::new();
    let mut run = run_hardware(
        program.clone(),
        memory,
        pipeline,
        hardware,
        max_cycles,
        |_intr, hw: &mut H| samples.extend(hw.drain_samples()),
    )?;
    samples.extend(run.hardware.drain_samples());

    let interval = measured_interval(
        counted(&run.stats, selection),
        run.hardware.selections(),
        nominal_interval,
    );
    let mut db = ProfileDatabase::new(&program, interval);
    for s in &samples {
        db.add(s);
    }
    Ok(SingleRun {
        db,
        samples,
        invalid_selections: run.hardware.invalid_selections(),
        cycles: run.cycles,
        stats: run.stats,
    })
}

/// The single-instruction sampling driver under
/// [`Session::profile_single`](crate::Session::profile_single).
pub(crate) fn single(
    program: Program,
    memory: Option<Memory>,
    pipeline: PipelineConfig,
    sampling: ProfileMeConfig,
    max_cycles: u64,
) -> Result<SingleRun, SimError> {
    let hw = ProfileMeHardware::new(sampling);
    run_collector(
        program,
        memory,
        pipeline,
        hw,
        sampling.selection,
        sampling.mean_interval,
        max_cycles,
    )
}

/// The N-way sampling driver under
/// [`Session::profile_nway`](crate::Session::profile_nway).
pub(crate) fn nway(
    program: Program,
    memory: Option<Memory>,
    pipeline: PipelineConfig,
    sampling: NWayConfig,
    max_cycles: u64,
) -> Result<SingleRun, SimError> {
    let hw = NWayHardware::new(sampling);
    run_collector(
        program,
        memory,
        pipeline,
        hw,
        sampling.selection,
        sampling.mean_interval,
        max_cycles,
    )
}

/// The paired sampling driver under
/// [`Session::profile_paired`](crate::Session::profile_paired).
pub(crate) fn paired(
    program: Program,
    memory: Option<Memory>,
    pipeline: PipelineConfig,
    sampling: PairedConfig,
    max_cycles: u64,
) -> Result<PairedRun, SimError> {
    let hw = PairedHardware::new(sampling);
    let mut pairs = Vec::new();
    let mut run = run_hardware(
        program.clone(),
        memory,
        pipeline,
        hw,
        max_cycles,
        |_intr, hw: &mut PairedHardware| pairs.extend(hw.drain_pairs()),
    )?;
    pairs.extend(run.hardware.drain_pairs());

    // Calibrate S (fetched instructions per pair) from the measured rate,
    // as for single sampling.
    let interval = measured_interval(
        counted(&run.stats, sampling.selection),
        run.hardware.pairs_selected(),
        sampling.mean_major_interval,
    );
    let mut db = PairProfileDatabase::new(&program, interval, sampling.window);
    for p in &pairs {
        db.add(p);
    }
    Ok(PairedRun {
        db,
        pairs,
        cycles: run.cycles,
        stats: run.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::SelectionMode;
    use profileme_isa::{Cond, ProgramBuilder, Reg};

    fn loop_program(trips: i64) -> Program {
        let mut b = ProgramBuilder::new();
        b.function("main");
        b.load_imm(Reg::R9, trips);
        b.load_imm(Reg::R12, 0x9000);
        let top = b.label("top");
        b.load(Reg::R1, Reg::R12, 0);
        b.add(Reg::R2, Reg::R2, Reg::R1);
        b.addi(Reg::R9, Reg::R9, -1);
        b.cond_br(Cond::Ne0, Reg::R9, top);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn ground_truth_matches_null_hardware_pipeline() {
        let p = loop_program(2_000);
        let truth = run_ground_truth(p.clone(), None, PipelineConfig::default(), 10_000_000)
            .expect("loop completes");
        assert!(truth.stats.retired > 2_000);
        assert_eq!(truth.stats.interrupts, 0, "null hardware never interrupts");
        assert_eq!(truth.cycles, truth.stats.cycles);

        // The generic seam reproduces a hand-built NullHardware pipeline.
        let mut sim = Pipeline::new(p, PipelineConfig::default(), NullHardware);
        sim.run(10_000_000).expect("loop completes");
        assert_eq!(truth.stats.retired, sim.stats().retired);
        assert_eq!(truth.cycles, sim.now());
    }

    #[test]
    fn run_hardware_hands_hardware_back() {
        let p = loop_program(500);
        let cfg = ProfileMeConfig {
            mean_interval: 50,
            buffer_depth: 4,
            ..ProfileMeConfig::default()
        };
        let mut interrupts = 0u64;
        let run = run_hardware(
            p,
            None,
            PipelineConfig::default(),
            ProfileMeHardware::new(cfg),
            10_000_000,
            |_intr, _hw| interrupts += 1,
        )
        .expect("loop completes");
        assert!(interrupts > 0, "sampling must interrupt");
        assert!(
            run.hardware.selections() > 0,
            "hardware state survives the run"
        );
    }

    #[test]
    fn single_sampling_collects_proportional_samples() {
        let p = loop_program(5000);
        let cfg = ProfileMeConfig {
            mean_interval: 100,
            buffer_depth: 4,
            ..ProfileMeConfig::default()
        };
        let run = single(p, None, PipelineConfig::default(), cfg, 100_000_000).unwrap();
        let fetched = run.stats.fetched;
        let expected = fetched / 100;
        let got = run.samples.len() as u64;
        assert!(
            got > expected / 2 && got < expected * 2,
            "expected about {expected} samples, got {got}"
        );
        assert_eq!(run.db.total_samples + run.db.invalid_samples, got);
    }

    #[test]
    fn estimates_converge_to_ground_truth() {
        let p = loop_program(40_000);
        let cfg = ProfileMeConfig {
            mean_interval: 50,
            buffer_depth: 8,
            ..ProfileMeConfig::default()
        };
        let run = single(p.clone(), None, PipelineConfig::default(), cfg, 100_000_000).unwrap();
        // Check the retire estimate of the loop load.
        let load_pc = p.entry().advance(2);
        let actual = run.stats.at(&p, load_pc).unwrap().retired as f64;
        let est = run.db.estimated_retires(load_pc);
        let ratio = est.value() / actual;
        // ~600 matching samples: CoV ≈ 4%, so 12% is a 3-sigma bound.
        assert!(
            (0.88..1.12).contains(&ratio),
            "estimate {} vs actual {actual} (ratio {ratio:.3})",
            est.value()
        );
        assert!(est.cov() < 0.1);
    }

    #[test]
    fn paired_sampling_produces_complete_pairs() {
        let p = loop_program(20_000);
        let cfg = PairedConfig {
            mean_major_interval: 200,
            window: 32,
            buffer_depth: 4,
            ..PairedConfig::default()
        };
        let run = paired(p, None, PipelineConfig::default(), cfg, 100_000_000).unwrap();
        assert!(run.pairs.len() > 100, "got {} pairs", run.pairs.len());
        let complete = run.pairs.iter().filter(|p| p.is_complete()).count();
        assert!(
            complete * 10 >= run.pairs.len() * 9,
            "most pairs complete: {complete}"
        );
        for pair in &run.pairs {
            assert!(pair.distance_instructions >= 1 && pair.distance_instructions <= 32);
            if let (Some(a), Some(b)) = (&pair.first.record, &pair.second.record) {
                assert_eq!(
                    b.timestamps.fetched - a.timestamps.fetched,
                    pair.distance_cycles,
                    "inter-pair latency register matches the fetch timestamps"
                );
            }
        }
        assert!(run.db.total_pairs > 0);
    }

    #[test]
    fn opportunity_selection_wastes_some_samples() {
        let p = loop_program(20_000);
        let cfg = ProfileMeConfig {
            mean_interval: 64,
            selection: SelectionMode::FetchOpportunities,
            buffer_depth: 8,
            ..ProfileMeConfig::default()
        };
        let run = single(p, None, PipelineConfig::default(), cfg, 100_000_000).unwrap();
        assert!(
            run.invalid_selections > 0,
            "opportunity counting must sometimes select empty slots"
        );
        assert_eq!(run.db.invalid_samples, run.invalid_selections);
    }
}
