//! Statistical estimators for sampled counts (§5.1).
//!
//! With one sample every S fetched instructions, `k` samples observed
//! with property P estimate the true count of fetches with P as `kS`.
//! The estimator is unbiased, and its coefficient of variation is
//! approximately `1/√E[k]`, so relative error falls with the square root
//! of the number of matching samples — the envelope drawn in Figure 3.

use serde::{Deserialize, Serialize};

/// A sampled estimate of an event count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Number of samples with the property (k).
    pub samples: u64,
    /// Mean sampling interval (S).
    pub interval: u64,
}

impl Estimate {
    /// The point estimate `kS`.
    pub fn value(&self) -> f64 {
        (self.samples * self.interval) as f64
    }

    /// Approximate coefficient of variation `1/√k` (undefined for zero
    /// samples; returns infinity).
    pub fn cov(&self) -> f64 {
        if self.samples == 0 {
            f64::INFINITY
        } else {
            1.0 / (self.samples as f64).sqrt()
        }
    }

    /// A symmetric confidence interval `kS ± z·√k·S`, clamped at zero.
    pub fn confidence_interval(&self, z: f64) -> (f64, f64) {
        let half = z * (self.samples as f64).sqrt() * self.interval as f64;
        ((self.value() - half).max(0.0), self.value() + half)
    }
}

/// The point estimate `kS` as a free function.
pub fn estimate_total(samples: u64, interval: u64) -> f64 {
    Estimate { samples, interval }.value()
}

/// The expected coefficient of variation `1/√k` for a given expected
/// sample count.
pub fn expected_cov(expected_samples: f64) -> f64 {
    if expected_samples <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / expected_samples.sqrt()
    }
}

/// Confidence interval as a free function.
pub fn confidence_interval(samples: u64, interval: u64, z: f64) -> (f64, f64) {
    Estimate { samples, interval }.confidence_interval(z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_estimate_is_ks() {
        assert_eq!(estimate_total(25, 1000), 25_000.0);
        assert_eq!(estimate_total(0, 1000), 0.0);
    }

    #[test]
    fn cov_falls_with_sqrt_samples() {
        let e4 = Estimate {
            samples: 4,
            interval: 10,
        };
        let e100 = Estimate {
            samples: 100,
            interval: 10,
        };
        assert!((e4.cov() - 0.5).abs() < 1e-12);
        assert!((e100.cov() - 0.1).abs() < 1e-12);
        assert!(Estimate {
            samples: 0,
            interval: 10
        }
        .cov()
        .is_infinite());
    }

    #[test]
    fn interval_is_symmetric_and_clamped() {
        let e = Estimate {
            samples: 4,
            interval: 10,
        };
        let (lo, hi) = e.confidence_interval(1.0);
        assert_eq!(lo, 20.0);
        assert_eq!(hi, 60.0);
        let tiny = Estimate {
            samples: 1,
            interval: 10,
        };
        let (lo, _) = tiny.confidence_interval(3.0);
        assert_eq!(lo, 0.0);
    }

    /// Monte-Carlo check that the estimator is unbiased and that the
    /// empirical CoV tracks 1/√E[k].
    #[test]
    fn estimator_is_unbiased_in_simulation() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let n: u64 = 100_000; // fetched instructions
        let f = 0.02; // fraction with the property
        let s: u64 = 100; // sampling interval
        let trials = 300;
        let mut estimates = Vec::with_capacity(trials);
        for _ in 0..trials {
            // Bernoulli sampling of instructions (rate 1/S), counting those
            // with the property.
            let mut k = 0u64;
            for _ in 0..n {
                if rng.gen::<f64>() < 1.0 / s as f64 && rng.gen::<f64>() < f {
                    k += 1;
                }
            }
            estimates.push(estimate_total(k, s));
        }
        let truth = f * n as f64; // 2000
        let mean = estimates.iter().sum::<f64>() / trials as f64;
        assert!(
            (mean - truth).abs() / truth < 0.05,
            "mean {mean} vs truth {truth}"
        );
        let var = estimates.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / (trials - 1) as f64;
        let cov = var.sqrt() / mean;
        let predicted = expected_cov(truth / s as f64); // 1/sqrt(20)
        assert!(
            (cov - predicted).abs() / predicted < 0.35,
            "cov {cov:.3} vs predicted {predicted:.3}"
        );
    }
}
