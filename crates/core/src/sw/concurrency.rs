//! Concurrency metrics from paired samples (§5.2.3–§5.2.4).

use crate::sw::database::{PairProfileDatabase, PcPairProfile};
use profileme_isa::Pc;
use profileme_uarch::CompletedSample;
use serde::{Deserialize, Serialize};

/// Definitions of "overlap" between the two instructions of a pair
/// (§5.2.4 lists several useful ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverlapKind {
    /// The paired instruction issued while I was *in progress* (fetched →
    /// retire-ready) and subsequently retired — the definition used for
    /// the wasted-issue-slots metric (§5.2.3).
    UsefulIssue,
    /// Both instructions were in flight (fetch → retire-ready windows
    /// intersect).
    BothInFlight,
    /// The paired instruction retired within a fixed number of cycles of
    /// I becoming retire-ready (for neighborhood-IPC style metrics).
    RetiredWithin(u64),
    /// Both instructions occupied functional units at the same time
    /// (issue → retire-ready windows intersect).
    BothExecuting,
}

/// Whether instruction `j` overlaps instruction `i` under `kind`.
///
/// `i` and `j` are the Profile Register contents of the two halves of a
/// pair; all comparisons use their recorded cycle timestamps (hardware
/// provides the inter-pair fetch latency precisely so these can be
/// correlated — §4.2).
pub fn useful_overlap(kind: OverlapKind, i: &CompletedSample, j: &CompletedSample) -> bool {
    let in_progress = |s: &CompletedSample| -> Option<(u64, u64)> {
        Some((s.timestamps.fetched, s.timestamps.retire_ready?))
    };
    match kind {
        OverlapKind::UsefulIssue => {
            let Some((start, end)) = in_progress(i) else {
                return false;
            };
            j.retired
                && j.timestamps
                    .issued
                    .is_some_and(|ji| start <= ji && ji < end)
        }
        OverlapKind::BothInFlight => {
            let (Some((is_, ie)), Some((js, je))) = (in_progress(i), in_progress(j)) else {
                return false;
            };
            is_ < je && js < ie
        }
        OverlapKind::RetiredWithin(cycles) => {
            let (Some(ir), Some(jr)) = (i.timestamps.retire_ready, j.timestamps.retired) else {
                return false;
            };
            j.retired && jr.abs_diff(ir) <= cycles
        }
        OverlapKind::BothExecuting => {
            let exec = |s: &CompletedSample| -> Option<(u64, u64)> {
                Some((s.timestamps.issued?, s.timestamps.retire_ready?))
            };
            let (Some((is_, ie)), Some((js, je))) = (exec(i), exec(j)) else {
                return false;
            };
            is_ < je && js < ie
        }
    }
}

/// The wasted-issue-slots estimate for one instruction (§5.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WastedSlots {
    /// Estimated total issue slots available while I was in progress,
    /// over all executions: `L_I · C · S / 2`.
    pub total_slots: f64,
    /// Estimated issue slots used by usefully overlapping instructions:
    /// `U_I · W · S`.
    pub useful_slots: f64,
    /// Estimated total in-progress latency over all executions of I:
    /// `L_I · S / 2` (cycles).
    pub total_latency: f64,
}

impl WastedSlots {
    /// `total_slots - useful_slots`, clamped at zero (sampling noise can
    /// push the difference slightly negative).
    pub fn wasted(&self) -> f64 {
        (self.total_slots - self.useful_slots).max(0.0)
    }
}

/// Computes the wasted-issue-slots estimate for the instruction at `pc`
/// from an aggregated pair database, for a machine with issue width
/// `issue_width` (C).
///
/// Following §5.2.3: with one pair every S fetched instructions and the
/// second sample uniform over a window of W instructions,
/// `wasted = (L_I · C · S / 2) − (U_I · W · S)` where `U_I = U_I^F +
/// U_I^B` and `L_I` sums the fetch→retire-ready latency over both
/// samples of every pair involving I.
pub fn wasted_issue_slots(db: &PairProfileDatabase, pc: Pc, issue_width: u64) -> WastedSlots {
    let p: PcPairProfile = db.at(pc);
    let s = db.interval() as f64;
    let w = db.window() as f64;
    let c = issue_width as f64;
    let l = p.latency_sum as f64;
    let u = (p.useful_forward + p.useful_backward) as f64;
    WastedSlots {
        total_slots: l * c * s / 2.0,
        useful_slots: u * w * s,
        total_latency: l * s / 2.0,
    }
}

/// Estimates, from a pair database aggregated with
/// [`OverlapKind::RetiredWithin`], the average number of instructions
/// retiring near I — a neighborhood-IPC indicator (§5.2.4). Returns
/// `None` when I has no samples.
pub fn instructions_retired_around(db: &PairProfileDatabase, pc: Pc) -> Option<f64> {
    let p = db.at(pc);
    if p.samples == 0 {
        return None;
    }
    let u = (p.useful_forward + p.useful_backward) as f64;
    // Each sample of I carries one Bernoulli observation of a window
    // position; scale by W to estimate the count over the whole window.
    Some(u / p.samples as f64 * db.window() as f64)
}

/// A statistically estimated pairwise metric (see
/// [`estimate_pair_metric`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairMetric {
    /// Fraction of window positions around I for which the predicate
    /// held.
    pub rate: f64,
    /// Estimated count of window instructions satisfying the predicate
    /// per execution of I (`rate × W`).
    pub per_execution: f64,
    /// Number of samples of I that contributed.
    pub samples: u64,
}

/// §5.2.4's flexibility, as an API: "paired sampling provides significant
/// flexibility, allowing a variety of different metrics to be computed
/// statistically by sampling the value of any function that can be
/// expressed as `f(I1, I2)` over a window of W instructions."
///
/// Evaluates an arbitrary pairwise predicate over every raw pair
/// involving the instruction at `pc` (considering each pair in both
/// orientations, per §5.2.2), and returns the estimated rate at which
/// window neighbours of I satisfy it. `window` is the W the pairs were
/// collected with. Returns `None` when no complete pairs involve `pc`.
///
/// # Example
///
/// The built-in metrics are special cases:
/// `estimate_pair_metric(pairs, pc, W, |i, j| useful_overlap(OverlapKind::UsefulIssue, i, j))`
/// reproduces the wasted-slot numerator.
pub fn estimate_pair_metric<F>(
    pairs: &[crate::PairedSample],
    pc: Pc,
    window: u64,
    f: F,
) -> Option<PairMetric>
where
    F: Fn(&CompletedSample, &CompletedSample) -> bool,
{
    let mut samples = 0u64;
    let mut hits = 0u64;
    for pair in pairs {
        let (Some(a), Some(b)) = (&pair.first.record, &pair.second.record) else {
            continue;
        };
        for (i, j) in [(a, b), (b, a)] {
            if i.pc == pc {
                samples += 1;
                if f(i, j) {
                    hits += 1;
                }
            }
        }
    }
    (samples > 0).then(|| {
        let rate = hits as f64 / samples as f64;
        PairMetric {
            rate,
            per_execution: rate * window as f64,
            samples,
        }
    })
}

/// Average number of window instructions occupying each pipeline phase
/// while the instruction at `pc` is in progress — §5.2.2's "statistically
/// reconstruct detailed processor pipeline states from paired samples",
/// made concrete.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StagePopulation {
    /// In decode/map (fetched, not yet mapped).
    pub front_end: f64,
    /// Waiting for operands (mapped, data not ready).
    pub waiting_operands: f64,
    /// Operands ready, waiting for a functional unit.
    pub waiting_issue: f64,
    /// Executing (issued, not yet retire-ready).
    pub executing: f64,
    /// Done, waiting for older instructions to retire.
    pub waiting_retire: f64,
    /// Samples of `pc` that contributed.
    pub samples: u64,
}

impl StagePopulation {
    /// Total window instructions in flight alongside `pc`, on average.
    pub fn total(&self) -> f64 {
        self.front_end
            + self.waiting_operands
            + self.waiting_issue
            + self.executing
            + self.waiting_retire
    }
}

/// Reconstructs the average pipeline population around the instruction at
/// `pc` from raw paired samples collected with window `window`: for each
/// phase, the expected number of window instructions in that phase while
/// `pc` is in progress. Returns `None` when no complete pairs involve
/// `pc` (or `pc` never reached retire-ready in them).
pub fn pipeline_population(
    pairs: &[crate::PairedSample],
    pc: Pc,
    window: u64,
) -> Option<StagePopulation> {
    let mut pop = StagePopulation::default();
    let mut acc = [0.0f64; 5];
    for pair in pairs {
        let (Some(a), Some(b)) = (&pair.first.record, &pair.second.record) else {
            continue;
        };
        for (i, j) in [(a, b), (b, a)] {
            if i.pc != pc {
                continue;
            }
            let Some(end) = i.timestamps.retire_ready else {
                continue;
            };
            let start = i.timestamps.fetched;
            if end <= start {
                continue;
            }
            pop.samples += 1;
            let span = (end - start) as f64;
            // Fraction of I's in-progress window J spent in each phase.
            let jt = &j.timestamps;
            let phases: [(u64, Option<u64>); 5] = [
                (jt.fetched, jt.mapped),
                (jt.mapped.unwrap_or(u64::MAX), jt.data_ready),
                (jt.data_ready.unwrap_or(u64::MAX), jt.issued),
                (jt.issued.unwrap_or(u64::MAX), jt.retire_ready),
                (jt.retire_ready.unwrap_or(u64::MAX), jt.retired),
            ];
            for (k, (p_start, p_end)) in phases.into_iter().enumerate() {
                let Some(p_end) = p_end else { continue };
                if p_start == u64::MAX {
                    continue;
                }
                let lo = p_start.max(start);
                let hi = p_end.min(end);
                if hi > lo {
                    acc[k] += (hi - lo) as f64 / span;
                }
            }
        }
    }
    if pop.samples == 0 {
        return None;
    }
    // Each sample is one Bernoulli draw of a window position; scale by W
    // to estimate the whole window's population.
    let scale = window as f64 / pop.samples as f64;
    pop.front_end = acc[0] * scale;
    pop.waiting_operands = acc[1] * scale;
    pop.waiting_issue = acc[2] * scale;
    pop.executing = acc[3] * scale;
    pop.waiting_retire = acc[4] * scale;
    Some(pop)
}

/// Neighborhood IPC (§5.2.4): instructions retiring within `within`
/// cycles of I's retirement, per cycle, estimated from raw pairs.
/// Returns `None` when no complete pairs involve `pc`.
pub fn neighborhood_ipc(
    pairs: &[crate::PairedSample],
    pc: Pc,
    window: u64,
    within: u64,
) -> Option<f64> {
    let m = estimate_pair_metric(pairs, pc, window, |i, j| {
        useful_overlap(OverlapKind::RetiredWithin(within), i, j)
    })?;
    // The predicate spans 2·within+1 cycles around I's retirement.
    Some(m.per_execution / (2 * within + 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use profileme_cfg::BranchHistory;
    use profileme_uarch::{EventSet, TagId, Timestamps};

    fn sample(
        fetched: u64,
        issued: Option<u64>,
        retire_ready: Option<u64>,
        retired_at: Option<u64>,
    ) -> CompletedSample {
        CompletedSample {
            tag: TagId(0),
            seq: 0,
            pc: Pc::new(0x1000),
            context: 1,
            class: profileme_isa::OpClass::IntAlu,
            events: EventSet::new(),
            retired: retired_at.is_some(),
            eff_addr: None,
            taken: None,
            history: BranchHistory::new(),
            timestamps: Timestamps {
                fetched,
                issued,
                retire_ready,
                retired: retired_at,
                ..Timestamps::default()
            },
            latencies: None,
            mem_latency: None,
        }
    }

    #[test]
    fn useful_issue_requires_issue_inside_window_and_retirement() {
        let i = sample(10, Some(12), Some(40), Some(45));
        let inside = sample(20, Some(25), Some(26), Some(50));
        let outside = sample(20, Some(41), Some(42), Some(50));
        let aborted = sample(20, Some(25), Some(26), None);
        assert!(useful_overlap(OverlapKind::UsefulIssue, &i, &inside));
        assert!(!useful_overlap(OverlapKind::UsefulIssue, &i, &outside));
        assert!(!useful_overlap(OverlapKind::UsefulIssue, &i, &aborted));
    }

    #[test]
    fn both_in_flight_is_symmetric() {
        let a = sample(0, Some(5), Some(20), Some(25));
        let b = sample(15, Some(17), Some(30), Some(35));
        let c = sample(21, Some(22), Some(23), Some(40));
        assert!(useful_overlap(OverlapKind::BothInFlight, &a, &b));
        assert!(useful_overlap(OverlapKind::BothInFlight, &b, &a));
        assert!(!useful_overlap(OverlapKind::BothInFlight, &a, &c));
    }

    #[test]
    fn retired_within_window() {
        let i = sample(0, Some(1), Some(10), Some(12));
        let near = sample(2, Some(3), Some(9), Some(14));
        let far = sample(2, Some(3), Some(9), Some(100));
        assert!(useful_overlap(OverlapKind::RetiredWithin(30), &i, &near));
        assert!(!useful_overlap(OverlapKind::RetiredWithin(30), &i, &far));
    }

    #[test]
    fn pair_metric_counts_both_orientations() {
        use crate::{PairedSample, Sample};
        let i = sample(0, Some(2), Some(40), Some(44));
        let j = sample(20, Some(20), Some(21), Some(50));
        let pair = PairedSample {
            first: Sample {
                record: Some(i),
                selected_cycle: 0,
            },
            second: Sample {
                record: Some(j),
                selected_cycle: 20,
            },
            distance_instructions: 5,
            distance_cycles: 20,
        };
        let pairs = vec![pair.clone(), pair];
        // Both pair members share the test PC, so each pair contributes
        // two samples of it.
        let m = estimate_pair_metric(&pairs, Pc::new(0x1000), 10, |i, j| {
            useful_overlap(OverlapKind::UsefulIssue, i, j)
        })
        .unwrap();
        assert_eq!(m.samples, 4);
        // Only the (first, second) orientation usefully overlaps.
        assert!((m.rate - 0.5).abs() < 1e-12);
        assert_eq!(m.per_execution, 5.0);
        // No samples at an unrelated PC.
        assert!(estimate_pair_metric(&pairs, Pc::new(0x2000), 10, |_, _| true).is_none());
    }

    #[test]
    fn neighborhood_ipc_scales_by_window_cycles() {
        use crate::{PairedSample, Sample};
        // I retire-ready at 10; J retires at 12: within 15 cycles.
        let i = sample(0, Some(1), Some(10), Some(11));
        let j = sample(2, Some(3), Some(9), Some(12));
        let pair = PairedSample {
            first: Sample {
                record: Some(i),
                selected_cycle: 0,
            },
            second: Sample {
                record: Some(j),
                selected_cycle: 2,
            },
            distance_instructions: 2,
            distance_cycles: 2,
        };
        let ipc = neighborhood_ipc(&[pair], Pc::new(0x1000), 62, 15).unwrap();
        // rate 1.0 over both orientations? J->I: I retires at 11, J
        // retire-ready at 9 -> |11 - 9| <= 15 holds too: rate = 1.
        // per_execution = 62; spanning 31 cycles -> IPC 2.
        assert!((ipc - 2.0).abs() < 1e-9, "ipc {ipc}");
    }

    #[test]
    fn pipeline_population_splits_phases_by_overlap() {
        use crate::{PairedSample, Sample};
        // I in progress over cycles 0..20. J: fetched 0, mapped 10,
        // data-ready 10, issued 10, retire-ready 20, retired 30. So J
        // spends half of I's window in the front end and half executing.
        let i = sample(0, Some(1), Some(20), Some(25));
        let mut j = sample(0, Some(10), Some(20), Some(30));
        j.pc = Pc::new(0x1004);
        j.timestamps.mapped = Some(10);
        j.timestamps.data_ready = Some(10);
        let pair = PairedSample {
            first: Sample {
                record: Some(i),
                selected_cycle: 0,
            },
            second: Sample {
                record: Some(j),
                selected_cycle: 0,
            },
            distance_instructions: 1,
            distance_cycles: 0,
        };
        let pop = pipeline_population(&[pair], Pc::new(0x1000), 64).unwrap();
        assert_eq!(pop.samples, 1);
        assert!((pop.front_end - 32.0).abs() < 1e-9, "{pop:?}");
        assert!((pop.executing - 32.0).abs() < 1e-9, "{pop:?}");
        assert!((pop.waiting_operands).abs() < 1e-9);
        assert!(
            (pop.waiting_retire).abs() < 1e-9,
            "J's retire wait is outside I's window"
        );
        assert!((pop.total() - 64.0).abs() < 1e-9);
    }

    #[test]
    fn wasted_slots_formula() {
        use crate::{PairedSample, Sample};
        let program = {
            let mut b = profileme_isa::ProgramBuilder::with_base(Pc::new(0x1000));
            b.function("f");
            b.nop();
            b.halt();
            b.build().unwrap()
        };
        let mut db = PairProfileDatabase::new(&program, 100, 10);
        // One pair: I in progress 0..40 (latency 40), J issues at 20 and
        // retires: useful forward overlap. Give J a distinct PC so the
        // aggregates do not mix.
        let i = sample(0, Some(2), Some(40), Some(44));
        let mut j = sample(20, Some(20), Some(21), Some(50));
        j.pc = Pc::new(0x1004);
        db.add(&PairedSample {
            first: Sample {
                record: Some(i),
                selected_cycle: 0,
            },
            second: Sample {
                record: Some(j),
                selected_cycle: 20,
            },
            distance_instructions: 5,
            distance_cycles: 20,
        });
        let ws = wasted_issue_slots(&db, Pc::new(0x1000), 4);
        // L_I = 40, C = 4, S = 100 -> total = 40*4*100/2 = 8000.
        assert_eq!(ws.total_slots, 8000.0);
        // U_I = 1, W = 10, S = 100 -> useful = 1000.
        assert_eq!(ws.useful_slots, 1000.0);
        assert_eq!(ws.wasted(), 7000.0);
        assert_eq!(ws.total_latency, 2000.0);
    }
}
