//! Aggregation to larger code units (§3): roll instruction-level
//! profiles up to procedures, the granularity programmers start from.

use crate::sw::database::{PcProfile, ProfileDatabase};
use profileme_isa::Program;
use serde::{Deserialize, Serialize};

/// A procedure-level rollup of a [`ProfileDatabase`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcedureSummary {
    /// The function's name.
    pub name: String,
    /// Instruction samples attributed to the function.
    pub samples: u64,
    /// Retired samples.
    pub retired: u64,
    /// Aborted samples.
    pub aborted: u64,
    /// D-cache miss samples (retired).
    pub dcache_misses: u64,
    /// I-cache miss samples (retired).
    pub icache_misses: u64,
    /// Branch mispredict samples (retired).
    pub mispredicted: u64,
    /// Σ fetch→retire-ready latency over samples — the function's share
    /// of in-flight time, the headline "where did the cycles go" number.
    pub in_progress_sum: u64,
    /// Estimated retired instructions (samples × S).
    pub estimated_retires: f64,
}

impl ProcedureSummary {
    fn accumulate(&mut self, p: &PcProfile, interval: u64) {
        self.samples += p.samples;
        self.retired += p.retired;
        self.aborted += p.aborted;
        self.dcache_misses += p.dcache_misses;
        self.icache_misses += p.icache_misses;
        self.mispredicted += p.mispredicted;
        self.in_progress_sum += p.in_progress_sum;
        self.estimated_retires += (p.retired * interval) as f64;
    }
}

/// Rolls a profile database up to per-procedure summaries, sorted by
/// their share of in-flight time (hottest first). Samples outside any
/// declared function are gathered under the name `"(outside functions)"`.
///
/// # Example
///
/// ```no_run
/// # fn demo(run: profileme_core::SingleRun, program: &profileme_isa::Program) {
/// for proc_ in profileme_core::procedure_summaries(&run.db, program) {
///     println!("{:<24} {:>8} samples", proc_.name, proc_.samples);
/// }
/// # }
/// ```
pub fn procedure_summaries(db: &ProfileDatabase, program: &Program) -> Vec<ProcedureSummary> {
    let blank = |name: &str| ProcedureSummary {
        name: name.to_string(),
        samples: 0,
        retired: 0,
        aborted: 0,
        dcache_misses: 0,
        icache_misses: 0,
        mispredicted: 0,
        in_progress_sum: 0,
        estimated_retires: 0.0,
    };
    let mut per_fn: Vec<ProcedureSummary> =
        program.functions().iter().map(|f| blank(&f.name)).collect();
    let mut outside = blank("(outside functions)");
    for (pc, prof) in db.iter() {
        match program
            .function_of(pc)
            .and_then(|f| program.functions().iter().position(|g| g.entry == f.entry))
        {
            Some(i) => per_fn[i].accumulate(prof, db.interval()),
            None => outside.accumulate(prof, db.interval()),
        }
    }
    if outside.samples > 0 {
        per_fn.push(outside);
    }
    per_fn.retain(|s| s.samples > 0);
    per_fn.sort_by_key(|s| std::cmp::Reverse(s.in_progress_sum));
    per_fn
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProfileMeConfig, Session};
    use profileme_isa::{Cond, ProgramBuilder, Reg};

    #[test]
    fn procedures_roll_up_and_rank_by_heat() {
        // main spins briefly; `hot` burns serial divides.
        let mut b = ProgramBuilder::new();
        b.function("main");
        let hot = b.forward_label("hot");
        let cold = b.forward_label("cold");
        b.call(cold);
        b.call(hot);
        b.halt();
        b.function("cold");
        b.place(cold);
        b.addi(Reg::R1, Reg::R1, 1);
        b.ret();
        b.function("hot");
        b.place(hot);
        b.load_imm(Reg::R9, 4_000);
        b.load_imm(Reg::R2, 977);
        b.load_imm(Reg::R3, 3);
        let top = b.label("top");
        b.fdiv(Reg::R2, Reg::R2, Reg::R3);
        b.addi(Reg::R2, Reg::R2, 7);
        b.addi(Reg::R9, Reg::R9, -1);
        b.cond_br(Cond::Ne0, Reg::R9, top);
        b.ret();
        let p = b.build().unwrap();

        let cfg = ProfileMeConfig {
            mean_interval: 16,
            buffer_depth: 8,
            ..Default::default()
        };
        let run = Session::builder(p.clone())
            .sampling(cfg)
            .build()
            .unwrap()
            .profile_single()
            .unwrap();
        let summaries = procedure_summaries(&run.db, &p);
        assert_eq!(summaries.first().map(|s| s.name.as_str()), Some("hot"));
        let total: u64 = summaries.iter().map(|s| s.samples).sum();
        assert_eq!(total, run.db.total_samples);
        let hot = &summaries[0];
        assert!(hot.estimated_retires > 10_000.0);
        // The sum of per-procedure aborted+retired equals samples.
        for s in &summaries {
            assert_eq!(s.samples, s.retired + s.aborted, "{}", s.name);
        }
    }
}
