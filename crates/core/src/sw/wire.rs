//! The sparse columnar wire format shared by database snapshots,
//! crash-recovery checkpoints, and epoch deltas.
//!
//! A profile database is a dense table (one row per static
//! instruction), but at any point in a run most rows are still zero —
//! and between two snapshot epochs only the rows the workload actually
//! executed have *changed*. The wire format therefore ships only the
//! touched rows:
//!
//! ```text
//! magic[4]                       version-tagged layout id
//! header: H × varint             base PC, row count, interval, …
//! run_count varint               touched rows as (gap, len) runs
//! runs: run_count × (gap, len)   gap = rows skipped since last run
//! columns: N × touched × varint  per-field columns, field-major
//! ```
//!
//! All integers are LEB128 varints, so small counters (the common
//! case by far) cost one byte. Row indices are run-length coded:
//! loops touch contiguous PC ranges, so a hot loop of 40 instructions
//! costs two varints, not forty. Values are laid out **column-major**
//! (all rows' `samples`, then all rows' `retired`, …): fields are
//! correlated across rows, which keeps varint widths uniform within a
//! column and makes per-field streaming decode possible.
//!
//! The encoder writes rows in ascending index order and skips rows
//! equal to the all-zero profile, so the bytes are a **pure function
//! of database content** — never of the dirty-set history. That
//! purity is what lets the sharded service's merged-view bytes stay
//! identical to direct aggregation no matter how the deltas were
//! batched (see `profileme-serve`'s merge-equivalence suite).

use crate::error::ProfileError;

/// Appends one LEB128 varint.
pub(crate) fn put_uv(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint, advancing `pos`.
pub(crate) fn get_uv(bytes: &[u8], pos: &mut usize) -> Result<u64, ProfileError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos).ok_or_else(|| truncated("varint"))?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(malformed("varint overflows u64"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(malformed("varint longer than 10 bytes"));
        }
    }
}

pub(crate) fn truncated(what: &str) -> ProfileError {
    ProfileError::Snapshot {
        reason: format!("sparse wire data truncated reading {what}"),
    }
}

pub(crate) fn malformed(what: &str) -> ProfileError {
    ProfileError::Snapshot {
        reason: format!("malformed sparse wire data: {what}"),
    }
}

/// Encodes one sparse table: `header` varints, then the touched-row
/// runs, then `N` field-major columns.
///
/// `rows` must be sorted by ascending row index with no duplicates —
/// the callers iterate either a full table scan or a sorted dirty
/// set, both of which guarantee it (debug-asserted below).
pub(crate) fn encode<const N: usize>(
    magic: [u8; 4],
    header: &[u64],
    rows: &[(u32, [u64; N])],
) -> Vec<u8> {
    debug_assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
    // Guess: magic + ~2 bytes per header word + ~1.5 bytes per value.
    let mut buf = Vec::with_capacity(4 + header.len() * 2 + rows.len() * (N * 2 + 2) + 8);
    buf.extend_from_slice(&magic);
    for &h in header {
        put_uv(&mut buf, h);
    }
    // Run-length code the touched indices.
    let mut runs: Vec<(u64, u64)> = Vec::new();
    let mut next = 0u64; // first index not covered by a previous run
    for &(idx, _) in rows {
        let idx = u64::from(idx);
        match runs.last_mut() {
            Some((_, len)) if idx == next => *len += 1,
            _ => runs.push((idx - next, 1)),
        }
        next = idx + 1;
    }
    put_uv(&mut buf, runs.len() as u64);
    for (gap, len) in runs {
        put_uv(&mut buf, gap);
        put_uv(&mut buf, len);
    }
    // Field-major columns.
    for field in 0..N {
        for (_, cols) in rows {
            put_uv(&mut buf, cols[field]);
        }
    }
    buf
}

/// A decoded sparse table.
pub(crate) struct Decoded<const N: usize> {
    pub header: Vec<u64>,
    /// `(row index, field values)`, ascending by index.
    pub rows: Vec<(u32, [u64; N])>,
}

/// Decodes [`encode`] output. `magic` and `header_len` pin the layout
/// version; anything that does not parse exactly (wrong magic, short
/// data, trailing bytes, out-of-order runs) is an error — snapshots
/// feed byte-identity checks, so leniency would only mask corruption.
pub(crate) fn decode<const N: usize>(
    bytes: &[u8],
    magic: [u8; 4],
    header_len: usize,
) -> Result<Decoded<N>, ProfileError> {
    if bytes.len() < 4 || bytes[..4] != magic {
        return Err(malformed("magic/version tag mismatch"));
    }
    let mut pos = 4;
    let mut header = Vec::with_capacity(header_len);
    for _ in 0..header_len {
        header.push(get_uv(bytes, &mut pos)?);
    }
    let run_count = get_uv(bytes, &mut pos)?;
    if run_count > bytes.len() as u64 {
        // Each run costs at least two bytes; a larger claim is corrupt
        // and would otherwise pre-allocate unboundedly.
        return Err(malformed("run count exceeds available data"));
    }
    let mut indices: Vec<u32> = Vec::new();
    let mut next = 0u64;
    for _ in 0..run_count {
        let gap = get_uv(bytes, &mut pos)?;
        let len = get_uv(bytes, &mut pos)?;
        if len == 0 {
            return Err(malformed("empty run"));
        }
        let start = next + gap;
        let end = start
            .checked_add(len)
            .ok_or_else(|| malformed("run overflows index space"))?;
        if end > u64::from(u32::MAX) {
            return Err(malformed("run exceeds addressable rows"));
        }
        // Every row costs at least N ≥ 1 column bytes, so more rows
        // than bytes is corrupt — reject before allocating for it.
        if indices.len() as u64 + len > bytes.len() as u64 {
            return Err(malformed("row count exceeds available data"));
        }
        for idx in start..end {
            indices.push(idx as u32);
        }
        next = end;
    }
    let mut rows: Vec<(u32, [u64; N])> = indices.into_iter().map(|i| (i, [0u64; N])).collect();
    for field in 0..N {
        for row in &mut rows {
            row.1[field] = get_uv(bytes, &mut pos)?;
        }
    }
    if pos != bytes.len() {
        return Err(malformed("trailing bytes after columns"));
    }
    Ok(Decoded { header, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_uv(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_uv(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut buf = Vec::new();
        put_uv(&mut buf, u64::MAX);
        let mut pos = 0;
        assert!(get_uv(&buf[..buf.len() - 1], &mut pos).is_err());
        // 10 continuation bytes overflow u64.
        let bad = [0xff; 11];
        let mut pos = 0;
        assert!(get_uv(&bad, &mut pos).is_err());
    }

    #[test]
    fn table_round_trips_with_runs_and_gaps() {
        let magic = *b"TST1";
        let rows: Vec<(u32, [u64; 3])> = vec![
            (0, [1, 2, 3]),
            (1, [4, 0, 6]),
            (7, [7, 8, 9]),
            (8, [0, 0, 1]),
            (100, [u64::MAX, 0, 127]),
        ];
        let bytes = encode(magic, &[42, 1000], &rows);
        let back: Decoded<3> = decode(&bytes, magic, 2).unwrap();
        assert_eq!(back.header, vec![42, 1000]);
        assert_eq!(back.rows, rows);
    }

    #[test]
    fn empty_table_round_trips() {
        let magic = *b"TST1";
        let bytes = encode::<4>(magic, &[7], &[]);
        let back: Decoded<4> = decode(&bytes, magic, 1).unwrap();
        assert_eq!(back.header, vec![7]);
        assert!(back.rows.is_empty());
    }

    #[test]
    fn decode_rejects_wrong_magic_and_trailing_bytes() {
        let magic = *b"TST1";
        let mut bytes = encode::<2>(magic, &[1], &[(3, [5, 6])]);
        assert!(decode::<2>(&bytes, *b"TST2", 1).is_err());
        bytes.push(0);
        assert!(decode::<2>(&bytes, magic, 1).is_err());
    }
}
