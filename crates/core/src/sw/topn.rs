//! An incrementally maintained top-N index over a [`ProfileDatabase`]:
//! the "hottest instructions" dashboard query answered in O(n) at read
//! time instead of O(len log len) per call.
//!
//! The index keeps, per [`ProfileField`], the `k` best-ranked rows
//! under `top_n`'s exact comparator (value descending, PC ascending
//! among ties). It is refreshed with
//! [`update_rows`](TopNIndex::update_rows) after every mutation —
//! which the delta snapshot plane hands it for free, since
//! `apply_delta` returns exactly the touched row indices.
//!
//! # Why the maintained lists are exact
//!
//! Counter values in a profile database are **monotone**: aggregation
//! and delta application only ever add. A row outside the list was
//! ranked below the list's worst entry the last time it changed; since
//! then its value is unchanged while list values only grew, so it
//! still ranks below — no stale row can silently belong in the top
//! `k`. Every change re-evaluates the changed row, so membership stays
//! exact after each refresh. (This breaks if values could decrease;
//! [`update_rows`](TopNIndex::update_rows) documents the requirement.)

use crate::sw::database::{PcProfile, ProfileDatabase, ProfileField};
use profileme_isa::Pc;

/// Default rank depth: comfortably above any dashboard's page size
/// while keeping per-refresh work trivial.
const DEFAULT_K: usize = 32;

/// The per-field top-`k` row index. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct TopNIndex {
    k: usize,
    /// One list per [`ProfileField::ALL`] entry, sorted best-first:
    /// `(value, row)` with value descending, row ascending on ties.
    lists: Vec<Vec<(u64, u32)>>,
}

impl Default for TopNIndex {
    fn default() -> TopNIndex {
        TopNIndex::new(DEFAULT_K)
    }
}

/// Best-first ordering: larger value first, smaller row on ties —
/// `top_n`'s comparator with the row index standing in for the PC
/// (rows are PC-ordered, so the tie-break agrees).
fn rank(a: &(u64, u32), b: &(u64, u32)) -> std::cmp::Ordering {
    b.0.cmp(&a.0).then(a.1.cmp(&b.1))
}

impl TopNIndex {
    /// An empty index ranking the best `k` rows per field (`k` is
    /// clamped to at least 1). Queries deeper than `k` fall back to a
    /// full recompute — see [`top_n`](TopNIndex::top_n).
    pub fn new(k: usize) -> TopNIndex {
        TopNIndex {
            k: k.max(1),
            lists: vec![Vec::new(); ProfileField::ALL.len()],
        }
    }

    /// The index's rank depth.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Re-ranks `rows` of `db` after their counters changed.
    ///
    /// Correctness requires monotone updates (counters never
    /// decrease) and that every changed row is eventually passed here
    /// — both guaranteed when the only mutations are `add`, `merge`,
    /// and `apply_delta` feeding back its touched-row list. Duplicate
    /// and unchanged rows are harmless.
    pub fn update_rows(&mut self, db: &ProfileDatabase, rows: &[u32]) {
        for (fi, field) in ProfileField::ALL.iter().enumerate() {
            let list = &mut self.lists[fi];
            for &row in rows {
                let value = db.row(row).field(*field);
                if let Some(pos) = list.iter().position(|e| e.1 == row) {
                    list.remove(pos);
                }
                if value == 0 {
                    continue;
                }
                let entry = (value, row);
                let pos = match list.binary_search_by(|e| rank(e, &entry)) {
                    Ok(pos) | Err(pos) => pos,
                };
                if pos < self.k {
                    list.insert(pos, entry);
                    list.truncate(self.k);
                }
            }
        }
    }

    /// The `n` hottest instructions by `field` — identical to
    /// [`ProfileDatabase::top_n`] on `db`, read straight off the
    /// maintained list in O(n).
    ///
    /// Returns `None` when the index cannot answer exactly: `n`
    /// reaches past a full list of `k` entries (a short list holds
    /// *every* positive row, so it answers any depth). Callers fall
    /// back to `db.top_n` for those deep queries.
    pub fn top_n(
        &self,
        db: &ProfileDatabase,
        n: usize,
        field: ProfileField,
    ) -> Option<Vec<(Pc, PcProfile)>> {
        let fi = ProfileField::ALL
            .iter()
            .position(|f| *f == field)
            .expect("ALL lists every field");
        let list = &self.lists[fi];
        if n > list.len() && list.len() == self.k {
            return None;
        }
        Some(
            list.iter()
                .take(n)
                .map(|&(_, row)| (db.pc_of_row(row), *db.row(row)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sample;
    use profileme_isa::{Program, ProgramBuilder};

    fn program(len: usize) -> Program {
        let mut b = ProgramBuilder::new();
        b.function("f");
        for _ in 0..len - 1 {
            b.nop();
        }
        b.halt();
        b.build().unwrap()
    }

    fn sample(p: &Program, row: u64) -> Sample {
        use profileme_cfg::BranchHistory;
        use profileme_uarch::{CompletedSample, EventSet, TagId, Timestamps};
        Sample {
            record: Some(CompletedSample {
                tag: TagId(0),
                seq: 0,
                pc: p.base().advance(row),
                context: 1,
                class: profileme_isa::OpClass::Nop,
                events: EventSet::new(),
                retired: true,
                eff_addr: None,
                taken: None,
                history: BranchHistory::new(),
                timestamps: Timestamps {
                    fetched: 10,
                    retire_ready: Some(25),
                    ..Timestamps::default()
                },
                latencies: None,
                mem_latency: None,
            }),
            selected_cycle: 0,
        }
    }

    #[test]
    fn matches_scratch_top_n_under_incremental_updates() {
        let p = program(64);
        let mut db = ProfileDatabase::new(&p, 100);
        let mut idx = TopNIndex::new(4);
        // A deterministic skewed stream: row (i*i+3i) % 64, touched in
        // bursts so ranks keep crossing.
        for i in 0..500u64 {
            let row = (i * i + 3 * i) % 64;
            db.add(&sample(&p, row));
            idx.update_rows(&db, &[row as u32]);
            for field in [ProfileField::Samples, ProfileField::Retired] {
                for n in [0, 1, 3, 4] {
                    assert_eq!(
                        idx.top_n(&db, n, field).unwrap(),
                        db.top_n(n, field),
                        "i={i} n={n}"
                    );
                }
            }
        }
        // Deeper than k on a full list: the index declines.
        assert!(idx.top_n(&db, 5, ProfileField::Samples).is_none());
    }

    #[test]
    fn short_lists_answer_any_depth() {
        let p = program(8);
        let mut db = ProfileDatabase::new(&p, 100);
        let mut idx = TopNIndex::new(16);
        for row in [1u32, 5] {
            db.add(&sample(&p, u64::from(row)));
            idx.update_rows(&db, &[row]);
        }
        // Only two positive rows exist; n=10 is still answerable.
        assert_eq!(
            idx.top_n(&db, 10, ProfileField::Samples).unwrap(),
            db.top_n(10, ProfileField::Samples)
        );
    }
}
