//! Path profiling (§5.3): the three reconstruction schemes of Figure 6,
//! driven by the Profiled Path Register (the global-branch-history
//! snapshot ProfileMe captures with every sample).

use profileme_cfg::{BranchHistory, Cfg, EdgeProfile, Path, Reconstructor, Scope};
use profileme_isa::{Pc, Program};
use serde::{Deserialize, Serialize};

/// The path-construction schemes compared in Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PathScheme {
    /// Ignore the history; pick the most frequent predecessor at each
    /// merge (what trace-scheduling compilers do with edge profiles).
    ExecutionCounts,
    /// Enumerate the backward paths consistent with the global branch
    /// history bits.
    HistoryBits,
    /// As `HistoryBits`, additionally discarding paths that do not
    /// contain the PC of the other instruction in a paired sample.
    HistoryBitsPaired,
}

impl PathScheme {
    /// All schemes, in the order Figure 6 plots them.
    pub const ALL: [PathScheme; 3] = [
        PathScheme::ExecutionCounts,
        PathScheme::HistoryBits,
        PathScheme::HistoryBitsPaired,
    ];
}

impl std::fmt::Display for PathScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PathScheme::ExecutionCounts => "execution counts",
            PathScheme::HistoryBits => "history bits",
            PathScheme::HistoryBitsPaired => "history bits + paired sampling",
        })
    }
}

/// What a reconstruction attempt produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconstructionOutcome {
    /// Exactly one candidate path.
    Unique(Path),
    /// More than one consistent path (count attached).
    Ambiguous(usize),
    /// No consistent path.
    NoPath,
}

impl ReconstructionOutcome {
    /// The paper's success criterion: exactly one path produced *and* it
    /// matches the actual execution path.
    pub fn is_success(&self, truth: &Path) -> bool {
        matches!(self, ReconstructionOutcome::Unique(p) if p == truth)
    }
}

/// Applies the Figure 6 schemes to samples.
#[derive(Debug, Clone, Copy)]
pub struct PathProfiler<'a> {
    recon: Reconstructor<'a>,
}

impl<'a> PathProfiler<'a> {
    /// Creates a profiler over a program's CFG.
    pub fn new(cfg: &'a Cfg, program: &'a Program) -> PathProfiler<'a> {
        PathProfiler {
            recon: Reconstructor::new(cfg, program),
        }
    }

    /// Reconstructs the path leading to `sample_pc` under `scheme`.
    ///
    /// * `history` / `history_len` — the Profiled Path Register contents
    ///   and how many of its bits to use.
    /// * `paired_pc` — the other PC of a paired sample (used only by
    ///   [`PathScheme::HistoryBitsPaired`]).
    /// * `profile` — edge frequencies (used only by
    ///   [`PathScheme::ExecutionCounts`]).
    #[allow(clippy::too_many_arguments)] // mirrors the sample record's fields
    pub fn reconstruct(
        &self,
        scheme: PathScheme,
        sample_pc: Pc,
        history: &BranchHistory,
        history_len: usize,
        paired_pc: Option<Pc>,
        profile: &EdgeProfile,
        scope: Scope,
    ) -> ReconstructionOutcome {
        match scheme {
            PathScheme::ExecutionCounts => {
                match self
                    .recon
                    .most_likely_path(sample_pc, history_len, profile, scope)
                {
                    Some(p) => ReconstructionOutcome::Unique(p),
                    None => ReconstructionOutcome::NoPath,
                }
            }
            PathScheme::HistoryBits | PathScheme::HistoryBitsPaired => {
                let pc_filter = if scheme == PathScheme::HistoryBitsPaired {
                    paired_pc
                } else {
                    None
                };
                let mut paths =
                    self.recon
                        .consistent_paths(sample_pc, history, history_len, scope, pc_filter);
                match paths.len() {
                    0 => ReconstructionOutcome::NoPath,
                    1 => ReconstructionOutcome::Unique(paths.pop().expect("len checked")),
                    n => ReconstructionOutcome::Ambiguous(n),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profileme_cfg::TraceRecorder;
    use profileme_isa::{Cond, ProgramBuilder, Reg};

    /// Loop with a data-dependent diamond: history bits disambiguate the
    /// arms, execution counts cannot when the arms are balanced.
    fn diamond(trips: i64) -> Program {
        let mut b = ProgramBuilder::new();
        b.function("f");
        b.load_imm(Reg::R1, trips);
        let top = b.label("top");
        let else_ = b.forward_label("else");
        let join = b.forward_label("join");
        b.and(Reg::R2, Reg::R1, 1);
        b.cond_br(Cond::Eq0, Reg::R2, else_);
        b.addi(Reg::R3, Reg::R3, 1);
        b.jmp(join);
        b.place(else_);
        b.addi(Reg::R4, Reg::R4, 1);
        b.place(join);
        b.addi(Reg::R1, Reg::R1, -1);
        b.cond_br(Cond::Ne0, Reg::R1, top);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn history_bits_beat_execution_counts_on_balanced_diamonds() {
        let p = diamond(60);
        let cfg = Cfg::build(&p);
        let profiler = PathProfiler::new(&cfg, &p);
        let mut rec = TraceRecorder::new(&p);
        let mut wins = [0u32; 3]; // per scheme
        let mut attempts = 0;
        let mut step = 0;
        while !rec.halted() {
            if step % 7 == 0 && step > 20 {
                let snap = rec.snapshot(&cfg);
                if let Some(truth) = snap.ground_truth(&cfg, &p, 4, Scope::Interprocedural) {
                    attempts += 1;
                    for (i, scheme) in PathScheme::ALL.iter().enumerate() {
                        let out = profiler.reconstruct(
                            *scheme,
                            snap.sample_pc,
                            &snap.history,
                            4,
                            snap.pc_before(3),
                            rec.edge_profile(),
                            Scope::Interprocedural,
                        );
                        if out.is_success(&truth) {
                            wins[i] += 1;
                        }
                    }
                }
            }
            rec.step(&p, &cfg).unwrap();
            step += 1;
        }
        assert!(attempts > 10);
        let [counts, history, paired] = wins;
        assert!(
            history > counts,
            "history bits ({history}) should beat execution counts ({counts})"
        );
        assert!(
            paired >= history,
            "pairing never hurts: {paired} vs {history}"
        );
        assert_eq!(
            history as i32, attempts,
            "the diamond is fully determined by 4 bits"
        );
    }

    #[test]
    fn outcome_success_criterion() {
        let truth = Path { blocks: vec![] };
        assert!(!ReconstructionOutcome::NoPath.is_success(&truth));
        assert!(!ReconstructionOutcome::Ambiguous(3).is_success(&truth));
        assert!(ReconstructionOutcome::Unique(truth.clone()).is_success(&truth));
    }
}
