//! The profile database: compact, incrementally aggregated per-PC
//! profiles, in the style the paper attributes to DCPI (§5, §5.2.3).
//!
//! Databases are **mergeable**: every per-PC field is a sum, so two
//! databases built from disjoint parts of one sample stream merge —
//! field-wise addition — into exactly the database a single aggregator
//! would have built. That algebra (commutative, associative, with the
//! empty database as identity) is what lets `profileme-serve` shard
//! ingest across threads and still produce byte-identical snapshots for
//! any shard count.

use crate::error::ProfileError;
use crate::sw::estimate::Estimate;
use crate::sw::wire;
use crate::sw::{useful_overlap, OverlapKind};
use crate::{PairedSample, Sample};
use profileme_isa::{Pc, Program};
use profileme_uarch::{EventSet, LatencySums};
use serde::{Deserialize, Serialize};

/// Per-field columns of a [`PcProfile`] row on the sparse wire.
const PC_COLUMNS: usize = 20;
/// Per-field columns of a [`PcPairProfile`] row on the sparse wire.
const PAIR_COLUMNS: usize = 4;
/// Header words of a single-sample table: base PC, row count,
/// interval, invalid samples, total samples.
const SNAP_HEADER: usize = 5;
/// Header words of a paired table: base PC, row count, interval,
/// window, total pairs, incomplete pairs.
const PAIR_HEADER: usize = 6;
/// Version magic: single-sample snapshot / delta.
const SNAP_MAGIC: [u8; 4] = *b"PMS1";
const DELTA_MAGIC: [u8; 4] = *b"PMD1";
/// Version magic: paired snapshot / delta.
const PAIR_SNAP_MAGIC: [u8; 4] = *b"PMP1";
const PAIR_DELTA_MAGIC: [u8; 4] = *b"PME1";

/// The on-wire encodings a profile database [`encode`]s to.
///
/// Both formats round-trip through the single [`decode`] entry point
/// (the leading bytes pick the parser: a version magic vs. a JSON
/// object), and both carry exactly the database *content* — two
/// databases holding identical aggregates produce identical bytes per
/// format regardless of how they were built.
///
/// [`encode`]: ProfileDatabase::encode
/// [`decode`]: ProfileDatabase::decode
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireFormat {
    /// The legacy dense JSON image: every row, zero or not. Kept for
    /// interoperability and as the reference encoding the decoder
    /// agreement tests compare against.
    Dense,
    /// The canonical sparse columnar format (`PMS1`/`PMP1` magic):
    /// varint-coded touched-row runs plus per-field columns — the
    /// encoding the snapshot plane, checkpoints, and the durable
    /// store all share.
    #[default]
    Sparse,
}

/// The set of rows touched since the last delta extraction: a bitset
/// for O(1) dedup plus the touched indices for O(touched) iteration.
///
/// Invariant: `touched` ⊇ every row whose profile differs from its
/// value at the last [`take_sorted`](DirtySet::take_sorted) (or from
/// the all-zero row if none happened yet). Supersets are fine — the
/// delta encoder skips rows whose diff is zero — so decoding marks
/// every nonzero row rather than trying to reconstruct history.
#[derive(Debug, Clone, Default)]
struct DirtySet {
    words: Vec<u64>,
    touched: Vec<u32>,
}

impl DirtySet {
    fn mark(&mut self, i: usize) {
        let w = i / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let bit = 1u64 << (i % 64);
        if self.words[w] & bit == 0 {
            self.words[w] |= bit;
            self.touched.push(i as u32);
        }
    }

    /// Drains the set, returning the touched rows in ascending order.
    fn take_sorted(&mut self) -> Vec<u32> {
        let mut t = std::mem::take(&mut self.touched);
        t.sort_unstable();
        for &i in &t {
            self.words[i as usize / 64] &= !(1u64 << (i % 64));
        }
        t
    }
}

/// Shared shape of `top_n`: move the `n` hottest rows to the front
/// with a selection pass (O(len)), then sort only those winners
/// (O(n log n)) — never the whole table.
fn select_top_n<P: Copy>(
    mut rows: Vec<(Pc, P)>,
    n: usize,
    value: impl Fn(&P) -> u64,
) -> Vec<(Pc, P)> {
    let cmp = |a: &(Pc, P), b: &(Pc, P)| {
        value(&b.1)
            .cmp(&value(&a.1))
            .then(a.0.addr().cmp(&b.0.addr()))
    };
    if n == 0 {
        return Vec::new();
    }
    if n < rows.len() {
        rows.select_nth_unstable_by(n - 1, &cmp);
        rows.truncate(n);
    }
    rows.sort_unstable_by(&cmp);
    rows
}

/// One u64 counter of a [`PcProfile`], named — the "any event" axis of
/// top-N queries over a database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ProfileField {
    /// Total samples (retired or aborted).
    Samples,
    /// Retired samples.
    Retired,
    /// Aborted samples.
    Aborted,
    /// I-cache miss samples.
    IcacheMisses,
    /// I-TLB miss samples.
    ItlbMisses,
    /// D-cache miss samples.
    DcacheMisses,
    /// D-TLB miss samples.
    DtlbMisses,
    /// L2 miss samples.
    L2Misses,
    /// Taken-branch samples.
    Taken,
    /// Mispredicted-branch samples.
    Mispredicted,
    /// Σ fetch→retire-ready latency.
    InProgressSum,
    /// Σ load issue→completion latency.
    MemLatencySum,
}

impl ProfileField {
    /// Every queryable field, in declaration order.
    pub const ALL: [ProfileField; 12] = [
        ProfileField::Samples,
        ProfileField::Retired,
        ProfileField::Aborted,
        ProfileField::IcacheMisses,
        ProfileField::ItlbMisses,
        ProfileField::DcacheMisses,
        ProfileField::DtlbMisses,
        ProfileField::L2Misses,
        ProfileField::Taken,
        ProfileField::Mispredicted,
        ProfileField::InProgressSum,
        ProfileField::MemLatencySum,
    ];

    /// The field's stable snake_case name (the CLI's `--by` values).
    pub fn name(&self) -> &'static str {
        match self {
            ProfileField::Samples => "samples",
            ProfileField::Retired => "retired",
            ProfileField::Aborted => "aborted",
            ProfileField::IcacheMisses => "icache_misses",
            ProfileField::ItlbMisses => "itlb_misses",
            ProfileField::DcacheMisses => "dcache_misses",
            ProfileField::DtlbMisses => "dtlb_misses",
            ProfileField::L2Misses => "l2_misses",
            ProfileField::Taken => "taken",
            ProfileField::Mispredicted => "mispredicted",
            ProfileField::InProgressSum => "in_progress_sum",
            ProfileField::MemLatencySum => "mem_latency_sum",
        }
    }

    /// Parses a [`name`](ProfileField::name) back into the field.
    pub fn parse(name: &str) -> Option<ProfileField> {
        ProfileField::ALL.into_iter().find(|f| f.name() == name)
    }
}

/// Aggregated single-instruction samples for one static instruction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PcProfile {
    /// Total samples at this PC (retired or aborted).
    pub samples: u64,
    /// Samples that retired.
    pub retired: u64,
    /// Samples that aborted.
    pub aborted: u64,
    /// Samples with an I-cache miss.
    pub icache_misses: u64,
    /// Samples with an I-TLB miss.
    pub itlb_misses: u64,
    /// Samples with a D-cache miss.
    pub dcache_misses: u64,
    /// Samples with a D-TLB miss.
    pub dtlb_misses: u64,
    /// Samples that also missed in the L2.
    pub l2_misses: u64,
    /// Samples where the (conditional branch) instruction was taken.
    pub taken: u64,
    /// Samples where the branch was mispredicted.
    pub mispredicted: u64,
    /// Sum of Table 1 stage latencies over retired samples.
    pub latency_sums: LatencySums,
    /// Retired samples contributing to `latency_sums`.
    pub latency_samples: u64,
    /// Sum of fetch→retire-ready latencies over samples that reached
    /// retire-ready.
    pub in_progress_sum: u64,
    /// Sum of load issue→completion latencies over load samples.
    pub mem_latency_sum: u64,
    /// Load samples contributing to `mem_latency_sum`.
    pub mem_latency_samples: u64,
}

impl PcProfile {
    fn add(&mut self, s: &Sample) {
        let Some(r) = &s.record else { return };
        self.samples += 1;
        if r.retired {
            self.retired += 1;
        } else {
            self.aborted += 1;
        }
        // Event counters aggregate *retired* samples only: aborted
        // (wrong-path) instructions execute with synthesized operands, so
        // mixing their events in would corrupt per-instruction rates.
        // This is exactly why ProfileMe delivers the retirement status in
        // the record instead of discarding unretired samples in hardware
        // (§8's contrast with Westcott & White) — software chooses.
        if r.retired {
            let flags: [(&mut u64, EventSet); 7] = [
                (&mut self.icache_misses, EventSet::ICACHE_MISS),
                (&mut self.itlb_misses, EventSet::ITLB_MISS),
                (&mut self.dcache_misses, EventSet::DCACHE_MISS),
                (&mut self.dtlb_misses, EventSet::DTLB_MISS),
                (&mut self.l2_misses, EventSet::L2_MISS),
                (&mut self.taken, EventSet::BRANCH_TAKEN),
                (&mut self.mispredicted, EventSet::MISPREDICTED),
            ];
            for (counter, bit) in flags {
                if r.events.contains(bit) {
                    *counter += 1;
                }
            }
        }
        if let Some(l) = &r.latencies {
            self.latency_sums.add(l);
            self.latency_samples += 1;
        }
        if let Some(p) = r.timestamps.in_progress_latency() {
            self.in_progress_sum += p;
        }
        if let Some(m) = r.mem_latency {
            self.mem_latency_sum += m;
            self.mem_latency_samples += 1;
        }
    }

    /// Accumulates another profile of the *same* static instruction:
    /// field-wise addition, the per-PC step of database merging.
    ///
    /// Merging is commutative and associative with the default profile
    /// as identity (property-tested in `tests/props.rs`), because every
    /// field is a plain sum over samples.
    pub fn merge(&mut self, other: &PcProfile) {
        self.samples += other.samples;
        self.retired += other.retired;
        self.aborted += other.aborted;
        self.icache_misses += other.icache_misses;
        self.itlb_misses += other.itlb_misses;
        self.dcache_misses += other.dcache_misses;
        self.dtlb_misses += other.dtlb_misses;
        self.l2_misses += other.l2_misses;
        self.taken += other.taken;
        self.mispredicted += other.mispredicted;
        self.latency_sums.merge(&other.latency_sums);
        self.latency_samples += other.latency_samples;
        self.in_progress_sum += other.in_progress_sum;
        self.mem_latency_sum += other.mem_latency_sum;
        self.mem_latency_samples += other.mem_latency_samples;
    }

    /// Reads one named counter.
    pub fn field(&self, field: ProfileField) -> u64 {
        match field {
            ProfileField::Samples => self.samples,
            ProfileField::Retired => self.retired,
            ProfileField::Aborted => self.aborted,
            ProfileField::IcacheMisses => self.icache_misses,
            ProfileField::ItlbMisses => self.itlb_misses,
            ProfileField::DcacheMisses => self.dcache_misses,
            ProfileField::DtlbMisses => self.dtlb_misses,
            ProfileField::L2Misses => self.l2_misses,
            ProfileField::Taken => self.taken,
            ProfileField::Mispredicted => self.mispredicted,
            ProfileField::InProgressSum => self.in_progress_sum,
            ProfileField::MemLatencySum => self.mem_latency_sum,
        }
    }

    /// Field-wise `self - earlier`, or `None` if `earlier` is not an
    /// earlier snapshot of this profile (some field would go negative).
    pub fn checked_sub(&self, earlier: &PcProfile) -> Option<PcProfile> {
        Some(PcProfile {
            samples: self.samples.checked_sub(earlier.samples)?,
            retired: self.retired.checked_sub(earlier.retired)?,
            aborted: self.aborted.checked_sub(earlier.aborted)?,
            icache_misses: self.icache_misses.checked_sub(earlier.icache_misses)?,
            itlb_misses: self.itlb_misses.checked_sub(earlier.itlb_misses)?,
            dcache_misses: self.dcache_misses.checked_sub(earlier.dcache_misses)?,
            dtlb_misses: self.dtlb_misses.checked_sub(earlier.dtlb_misses)?,
            l2_misses: self.l2_misses.checked_sub(earlier.l2_misses)?,
            taken: self.taken.checked_sub(earlier.taken)?,
            mispredicted: self.mispredicted.checked_sub(earlier.mispredicted)?,
            latency_sums: self.latency_sums.checked_sub(&earlier.latency_sums)?,
            latency_samples: self.latency_samples.checked_sub(earlier.latency_samples)?,
            in_progress_sum: self.in_progress_sum.checked_sub(earlier.in_progress_sum)?,
            mem_latency_sum: self.mem_latency_sum.checked_sub(earlier.mem_latency_sum)?,
            mem_latency_samples: self
                .mem_latency_samples
                .checked_sub(earlier.mem_latency_samples)?,
        })
    }

    /// Whether every counter is zero (the encoder's "skip this row").
    fn is_zero(&self) -> bool {
        *self == PcProfile::default()
    }

    /// The row flattened into its wire columns, in layout order.
    fn to_columns(self) -> [u64; PC_COLUMNS] {
        [
            self.samples,
            self.retired,
            self.aborted,
            self.icache_misses,
            self.itlb_misses,
            self.dcache_misses,
            self.dtlb_misses,
            self.l2_misses,
            self.taken,
            self.mispredicted,
            self.latency_sums.fetch_to_map,
            self.latency_sums.map_to_data_ready,
            self.latency_sums.data_ready_to_issue,
            self.latency_sums.issue_to_retire_ready,
            self.latency_sums.retire_ready_to_retire,
            self.latency_sums.load_completion,
            self.latency_samples,
            self.in_progress_sum,
            self.mem_latency_sum,
            self.mem_latency_samples,
        ]
    }

    /// Inverse of [`to_columns`](PcProfile::to_columns).
    fn from_columns(c: &[u64; PC_COLUMNS]) -> PcProfile {
        PcProfile {
            samples: c[0],
            retired: c[1],
            aborted: c[2],
            icache_misses: c[3],
            itlb_misses: c[4],
            dcache_misses: c[5],
            dtlb_misses: c[6],
            l2_misses: c[7],
            taken: c[8],
            mispredicted: c[9],
            latency_sums: LatencySums {
                fetch_to_map: c[10],
                map_to_data_ready: c[11],
                data_ready_to_issue: c[12],
                issue_to_retire_ready: c[13],
                retire_ready_to_retire: c[14],
                load_completion: c[15],
            },
            latency_samples: c[16],
            in_progress_sum: c[17],
            mem_latency_sum: c[18],
            mem_latency_samples: c[19],
        }
    }
}

/// A database of single-instruction samples: one [`PcProfile`] per static
/// instruction, aggregated incrementally so storage stays compact no
/// matter how long the profiled run is.
///
/// # Example
///
/// ```no_run
/// use profileme_core::Session;
/// # fn demo(program: profileme_isa::Program) -> Result<(), Box<dyn std::error::Error>> {
/// let run = Session::builder(program).build()?.profile_single()?;
/// for (pc, prof) in run.db.iter() {
///     println!("{pc}: ~{} retires", run.db.estimated_retires(pc).value());
///     let _ = prof;
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ProfileDatabase {
    base: Pc,
    per_pc: Vec<PcProfile>,
    /// Mean sampling interval S (fetched instructions per sample).
    interval: u64,
    /// Samples delivered without an instruction (empty selected slots).
    pub invalid_samples: u64,
    /// Total valid samples aggregated.
    pub total_samples: u64,
    /// Rows touched since the last delta extraction. Bookkeeping, not
    /// content: excluded from equality, serialization, and snapshots.
    dirty: DirtySet,
}

/// Content equality only — two databases holding the same aggregates
/// are equal regardless of their dirty-set history.
impl PartialEq for ProfileDatabase {
    fn eq(&self, other: &ProfileDatabase) -> bool {
        self.base == other.base
            && self.per_pc == other.per_pc
            && self.interval == other.interval
            && self.invalid_samples == other.invalid_samples
            && self.total_samples == other.total_samples
    }
}

// Hand-written (rather than derived) so the dirty set stays out of
// the encoding; the field layout matches what the derive produced
// before the dirty set existed, so old dense snapshots still load.
impl Serialize for ProfileDatabase {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("base".to_string(), self.base.to_value()),
            ("per_pc".to_string(), self.per_pc.to_value()),
            ("interval".to_string(), self.interval.to_value()),
            (
                "invalid_samples".to_string(),
                self.invalid_samples.to_value(),
            ),
            ("total_samples".to_string(), self.total_samples.to_value()),
        ])
    }
}

impl Deserialize for ProfileDatabase {
    fn from_value(v: &serde::Value) -> Result<ProfileDatabase, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::expected("object", "ProfileDatabase"))?;
        let mut db = ProfileDatabase {
            base: serde::from_field(obj, "base", "ProfileDatabase")?,
            per_pc: serde::from_field(obj, "per_pc", "ProfileDatabase")?,
            interval: serde::from_field(obj, "interval", "ProfileDatabase")?,
            invalid_samples: serde::from_field(obj, "invalid_samples", "ProfileDatabase")?,
            total_samples: serde::from_field(obj, "total_samples", "ProfileDatabase")?,
            dirty: DirtySet::default(),
        };
        db.mark_all_nonzero();
        Ok(db)
    }
}

impl ProfileDatabase {
    /// Creates an empty database for `program`, recording estimates at
    /// sampling interval `interval`.
    pub fn new(program: &Program, interval: u64) -> ProfileDatabase {
        ProfileDatabase {
            base: program.base(),
            per_pc: vec![PcProfile::default(); program.len()],
            interval,
            invalid_samples: 0,
            total_samples: 0,
            dirty: DirtySet::default(),
        }
    }

    /// The mean sampling interval S.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    fn index_of(&self, pc: Pc) -> Option<usize> {
        let off = pc.distance_from(self.base);
        (0..self.per_pc.len() as i64)
            .contains(&off)
            .then_some(off as usize)
    }

    /// Aggregates one sample.
    pub fn add(&mut self, sample: &Sample) {
        match &sample.record {
            None => self.invalid_samples += 1,
            Some(r) => {
                if let Some(i) = self.index_of(r.pc) {
                    self.per_pc[i].add(sample);
                    self.dirty.mark(i);
                    self.total_samples += 1;
                }
            }
        }
    }

    /// The profile for `pc` (zeroed if out of image).
    pub fn at(&self, pc: Pc) -> PcProfile {
        self.index_of(pc)
            .map(|i| self.per_pc[i])
            .unwrap_or_default()
    }

    /// Iterates `(pc, profile)` for PCs with at least one sample.
    pub fn iter(&self) -> impl Iterator<Item = (Pc, &PcProfile)> + '_ {
        self.per_pc
            .iter()
            .enumerate()
            .filter(|(_, p)| p.samples > 0)
            .map(|(i, p)| (self.base.advance(i as u64), p))
    }

    /// Estimated number of retirements of the instruction at `pc`.
    pub fn estimated_retires(&self, pc: Pc) -> Estimate {
        Estimate {
            samples: self.at(pc).retired,
            interval: self.interval,
        }
    }

    /// Estimated number of D-cache misses of the instruction at `pc`.
    pub fn estimated_dcache_misses(&self, pc: Pc) -> Estimate {
        Estimate {
            samples: self.at(pc).dcache_misses,
            interval: self.interval,
        }
    }

    /// Estimated fetch count (retired + aborted samples).
    pub fn estimated_fetches(&self, pc: Pc) -> Estimate {
        Estimate {
            samples: self.at(pc).samples,
            interval: self.interval,
        }
    }

    /// Sample-estimated abort *rate* for `pc` (aborted / samples), or
    /// `None` without samples.
    pub fn abort_rate(&self, pc: Pc) -> Option<f64> {
        let p = self.at(pc);
        (p.samples > 0).then(|| p.aborted as f64 / p.samples as f64)
    }

    fn check_compatible(&self, other: &ProfileDatabase) -> Result<(), ProfileError> {
        if self.base != other.base || self.per_pc.len() != other.per_pc.len() {
            return Err(ProfileError::Mismatch {
                what: "program image",
            });
        }
        if self.interval != other.interval {
            return Err(ProfileError::Mismatch {
                what: "sampling interval",
            });
        }
        Ok(())
    }

    /// Accumulates `other` into `self`: field-wise addition of every
    /// per-PC profile plus the stream totals.
    ///
    /// Because aggregation is a sum over samples, merging databases
    /// built from disjoint parts of one stream reproduces, exactly, the
    /// database a single aggregator would have built from the whole
    /// stream — the invariant behind sharded ingest.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Mismatch`] if the databases describe
    /// different program images or sampling intervals.
    pub fn merge(&mut self, other: &ProfileDatabase) -> Result<(), ProfileError> {
        self.check_compatible(other)?;
        for (i, (acc, p)) in self.per_pc.iter_mut().zip(&other.per_pc).enumerate() {
            // Zero rows are identities: skipping them keeps the merge
            // proportional to `other`'s footprint and the dirty set
            // covering exactly the rows that changed.
            if !p.is_zero() {
                acc.merge(p);
                self.dirty.mark(i);
            }
        }
        self.invalid_samples += other.invalid_samples;
        self.total_samples += other.total_samples;
        Ok(())
    }

    /// The interval delta `self - earlier`: what was aggregated between
    /// two snapshots of a continuously profiled run.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Mismatch`] if the databases are
    /// incompatible or `earlier` is not actually an earlier snapshot
    /// (some counter would go negative).
    pub fn delta_since(&self, earlier: &ProfileDatabase) -> Result<ProfileDatabase, ProfileError> {
        self.check_compatible(earlier)?;
        let not_earlier = ProfileError::Mismatch {
            what: "snapshot order (counters would go negative)",
        };
        let mut per_pc = Vec::with_capacity(self.per_pc.len());
        for (later, early) in self.per_pc.iter().zip(&earlier.per_pc) {
            per_pc.push(later.checked_sub(early).ok_or(not_earlier.clone())?);
        }
        let mut db = ProfileDatabase {
            base: self.base,
            per_pc,
            interval: self.interval,
            invalid_samples: self
                .invalid_samples
                .checked_sub(earlier.invalid_samples)
                .ok_or(not_earlier.clone())?,
            total_samples: self
                .total_samples
                .checked_sub(earlier.total_samples)
                .ok_or(not_earlier)?,
            dirty: DirtySet::default(),
        };
        db.mark_all_nonzero();
        Ok(db)
    }

    /// The `n` hottest instructions by `field`, descending, PCs
    /// ascending among ties — a deterministic order, so reports and
    /// snapshots diff cleanly.
    ///
    /// Selection runs in O(len + n log n): a `select_nth` pass moves
    /// the winners to the front, and only those are fully sorted.
    pub fn top_n(&self, n: usize, field: ProfileField) -> Vec<(Pc, PcProfile)> {
        let rows: Vec<(Pc, PcProfile)> = self
            .iter()
            .filter(|(_, p)| p.field(field) > 0)
            .map(|(pc, p)| (pc, *p))
            .collect();
        select_top_n(rows, n, |p| p.field(field))
    }

    /// The sparse wire header: base PC, rows, interval, then the
    /// stream counters.
    fn header(&self) -> [u64; SNAP_HEADER] {
        [
            self.base.addr(),
            self.per_pc.len() as u64,
            self.interval,
            self.invalid_samples,
            self.total_samples,
        ]
    }

    /// Marks every nonzero row dirty — the safe superset used after
    /// decoding or deriving a database, where the true "touched since
    /// last extraction" history is unknown. Extraction skips zero
    /// diffs, so a superset costs bytes never correctness.
    fn mark_all_nonzero(&mut self) {
        for i in 0..self.per_pc.len() {
            if !self.per_pc[i].is_zero() {
                self.dirty.mark(i);
            }
        }
    }

    /// Rebuilds a database from a decoded sparse table.
    fn from_decoded(d: wire::Decoded<PC_COLUMNS>) -> Result<ProfileDatabase, ProfileError> {
        let [base, len, interval, invalid_samples, total_samples] = d.header[..] else {
            unreachable!("decode returns exactly SNAP_HEADER words");
        };
        if base % 4 != 0 {
            return Err(wire::malformed("base PC is not 4-byte aligned"));
        }
        let len = usize::try_from(len).map_err(|_| wire::malformed("row count exceeds usize"))?;
        let mut db = ProfileDatabase {
            base: Pc::new(base),
            per_pc: vec![PcProfile::default(); len],
            interval,
            invalid_samples,
            total_samples,
            dirty: DirtySet::default(),
        };
        for (i, cols) in &d.rows {
            let i = *i as usize;
            if i >= len {
                return Err(wire::malformed("row index beyond table length"));
            }
            db.per_pc[i] = PcProfile::from_columns(cols);
            db.dirty.mark(i);
        }
        Ok(db)
    }

    /// Serializes the database to its canonical snapshot bytes — the
    /// sparse columnar wire format (varint-coded touched-PC runs plus
    /// per-field columns; see [`wire`](crate::sw::wire)).
    ///
    /// The bytes are a pure function of database *content*: two
    /// databases holding identical aggregates produce identical bytes
    /// regardless of how they were built, which is how the
    /// merge-equivalence tests and the ingest/snapshot benches state
    /// their byte-identity invariant.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Snapshot`] if serialization fails.
    pub fn encode(&self, format: WireFormat) -> Result<Vec<u8>, ProfileError> {
        match format {
            WireFormat::Sparse => {
                let rows: Vec<(u32, [u64; PC_COLUMNS])> = self
                    .per_pc
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| !p.is_zero())
                    .map(|(i, p)| (i as u32, p.to_columns()))
                    .collect();
                Ok(wire::encode(SNAP_MAGIC, &self.header(), &rows))
            }
            WireFormat::Dense => serde_json::to_string(self)
                .map(String::into_bytes)
                .map_err(|e| ProfileError::Snapshot {
                    reason: e.to_string(),
                }),
        }
    }

    /// Deserializes a database from [`encode`] output of either
    /// [`WireFormat`] — the leading bytes pick the decoder (version
    /// magic vs. a JSON object).
    ///
    /// [`encode`]: ProfileDatabase::encode
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Snapshot`] if the bytes do not parse.
    pub fn decode(bytes: &[u8]) -> Result<ProfileDatabase, ProfileError> {
        if bytes.first() == Some(&b'{') {
            return serde_json::from_slice(bytes).map_err(|e| ProfileError::Snapshot {
                reason: e.to_string(),
            });
        }
        ProfileDatabase::from_decoded(wire::decode(bytes, SNAP_MAGIC, SNAP_HEADER)?)
    }

    /// Extracts everything aggregated since `base` as sparse delta
    /// bytes, advancing `base` to match `self` — the O(touched)
    /// epoch-publication step of the sharded snapshot plane.
    ///
    /// Only rows marked dirty since the last extraction are visited,
    /// so the cost is proportional to what changed, not to the image.
    /// [`apply_delta`](ProfileDatabase::apply_delta) is the exact
    /// inverse: applying the returned bytes to a copy of the old
    /// `base` reproduces `self`'s content.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Mismatch`] if `base` is incompatible or
    /// is not an earlier state of `self` (a counter would go negative).
    pub fn extract_delta(&mut self, base: &mut ProfileDatabase) -> Result<Vec<u8>, ProfileError> {
        self.check_compatible(base)?;
        let not_earlier = ProfileError::Mismatch {
            what: "delta base (counters would go negative)",
        };
        let touched = self.dirty.take_sorted();
        let mut rows: Vec<(u32, [u64; PC_COLUMNS])> = Vec::with_capacity(touched.len());
        for i in touched {
            let idx = i as usize;
            let diff = self.per_pc[idx]
                .checked_sub(&base.per_pc[idx])
                .ok_or(not_earlier.clone())?;
            if !diff.is_zero() {
                rows.push((i, diff.to_columns()));
                base.per_pc[idx] = self.per_pc[idx];
                base.dirty.mark(idx);
            }
        }
        let header = [
            self.base.addr(),
            self.per_pc.len() as u64,
            self.interval,
            self.invalid_samples
                .checked_sub(base.invalid_samples)
                .ok_or(not_earlier.clone())?,
            self.total_samples
                .checked_sub(base.total_samples)
                .ok_or(not_earlier)?,
        ];
        base.invalid_samples = self.invalid_samples;
        base.total_samples = self.total_samples;
        Ok(wire::encode(DELTA_MAGIC, &header, &rows))
    }

    /// Applies delta bytes produced by
    /// [`extract_delta`](ProfileDatabase::extract_delta): field-wise
    /// addition of every carried row plus the stream counters, in
    /// O(touched). Returns the indices of the rows that changed so
    /// incremental indexes (top-N heaps) can re-evaluate exactly them.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Snapshot`] if the bytes do not parse,
    /// or [`ProfileError::Mismatch`] if the delta describes a
    /// different program image or interval.
    pub fn apply_delta(&mut self, bytes: &[u8]) -> Result<Vec<u32>, ProfileError> {
        let d: wire::Decoded<PC_COLUMNS> = wire::decode(bytes, DELTA_MAGIC, SNAP_HEADER)?;
        let [base, len, interval, invalid_samples, total_samples] = d.header[..] else {
            unreachable!("decode returns exactly SNAP_HEADER words");
        };
        if base != self.base.addr() || len != self.per_pc.len() as u64 {
            return Err(ProfileError::Mismatch {
                what: "program image",
            });
        }
        if interval != self.interval {
            return Err(ProfileError::Mismatch {
                what: "sampling interval",
            });
        }
        let mut touched = Vec::with_capacity(d.rows.len());
        for (i, cols) in &d.rows {
            let idx = *i as usize;
            if idx >= self.per_pc.len() {
                return Err(wire::malformed("row index beyond table length"));
            }
            self.per_pc[idx].merge(&PcProfile::from_columns(cols));
            self.dirty.mark(idx);
            touched.push(*i);
        }
        self.invalid_samples += invalid_samples;
        self.total_samples += total_samples;
        Ok(touched)
    }

    /// The profile at dense row index `i` (used by in-crate indexes).
    pub(crate) fn row(&self, i: u32) -> &PcProfile {
        &self.per_pc[i as usize]
    }

    /// The PC of dense row index `i`.
    pub(crate) fn pc_of_row(&self, i: u32) -> Pc {
        self.base.advance(u64::from(i))
    }
}

/// One u64 counter of a [`PcPairProfile`], named — the paired-database
/// axis of top-N queries, mirroring [`ProfileField`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PairProfileField {
    /// Samples of I (both positions of every pair).
    Samples,
    /// U_I^F: pairs ⟨I, J⟩ where J usefully overlaps I.
    UsefulForward,
    /// U_I^B: pairs ⟨J, I⟩ where J usefully overlaps I.
    UsefulBackward,
    /// L_I: Σ fetch→retire-ready latency over samples of I.
    LatencySum,
}

impl PairProfileField {
    /// Every queryable field, in declaration order.
    pub const ALL: [PairProfileField; 4] = [
        PairProfileField::Samples,
        PairProfileField::UsefulForward,
        PairProfileField::UsefulBackward,
        PairProfileField::LatencySum,
    ];

    /// The field's stable snake_case name.
    pub fn name(&self) -> &'static str {
        match self {
            PairProfileField::Samples => "samples",
            PairProfileField::UsefulForward => "useful_forward",
            PairProfileField::UsefulBackward => "useful_backward",
            PairProfileField::LatencySum => "latency_sum",
        }
    }

    /// Parses a [`name`](PairProfileField::name) back into the field.
    pub fn parse(name: &str) -> Option<PairProfileField> {
        PairProfileField::ALL.into_iter().find(|f| f.name() == name)
    }
}

/// Aggregated paired-sample state for one static instruction I: exactly
/// the compact sums §5.2.3 prescribes (U_I^F, U_I^B, L_I).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PcPairProfile {
    /// Samples of I (counting both positions in every pair).
    pub samples: u64,
    /// U_I^F: pairs ⟨I, J⟩ where J usefully overlaps I.
    pub useful_forward: u64,
    /// U_I^B: pairs ⟨J, I⟩ where J usefully overlaps I.
    pub useful_backward: u64,
    /// L_I: sum of fetch→retire-ready latencies over all samples of I.
    pub latency_sum: u64,
}

impl PcPairProfile {
    /// Accumulates another aggregate of the same static instruction —
    /// field-wise addition, exactly as [`PcProfile::merge`].
    pub fn merge(&mut self, other: &PcPairProfile) {
        self.samples += other.samples;
        self.useful_forward += other.useful_forward;
        self.useful_backward += other.useful_backward;
        self.latency_sum += other.latency_sum;
    }

    /// Field-wise `self - earlier`, or `None` if some field would go
    /// negative.
    pub fn checked_sub(&self, earlier: &PcPairProfile) -> Option<PcPairProfile> {
        Some(PcPairProfile {
            samples: self.samples.checked_sub(earlier.samples)?,
            useful_forward: self.useful_forward.checked_sub(earlier.useful_forward)?,
            useful_backward: self.useful_backward.checked_sub(earlier.useful_backward)?,
            latency_sum: self.latency_sum.checked_sub(earlier.latency_sum)?,
        })
    }

    /// Reads one named counter.
    pub fn field(&self, field: PairProfileField) -> u64 {
        match field {
            PairProfileField::Samples => self.samples,
            PairProfileField::UsefulForward => self.useful_forward,
            PairProfileField::UsefulBackward => self.useful_backward,
            PairProfileField::LatencySum => self.latency_sum,
        }
    }

    /// Whether every counter is zero (the encoder's "skip this row").
    fn is_zero(&self) -> bool {
        *self == PcPairProfile::default()
    }

    /// The row flattened into its wire columns, in layout order.
    fn to_columns(self) -> [u64; PAIR_COLUMNS] {
        [
            self.samples,
            self.useful_forward,
            self.useful_backward,
            self.latency_sum,
        ]
    }

    /// Inverse of [`to_columns`](PcPairProfile::to_columns).
    fn from_columns(c: &[u64; PAIR_COLUMNS]) -> PcPairProfile {
        PcPairProfile {
            samples: c[0],
            useful_forward: c[1],
            useful_backward: c[2],
            latency_sum: c[3],
        }
    }
}

/// A database of paired samples with incremental aggregation.
#[derive(Debug, Clone)]
pub struct PairProfileDatabase {
    base: Pc,
    per_pc: Vec<PcPairProfile>,
    /// Mean major interval S (fetched instructions per pair).
    interval: u64,
    /// Window W from which the minor interval is drawn.
    window: u64,
    /// Pairs aggregated (complete pairs only).
    pub total_pairs: u64,
    /// Pairs discarded because a half was an empty selection.
    pub incomplete_pairs: u64,
    /// Rows touched since the last delta extraction (bookkeeping, not
    /// content — see [`ProfileDatabase`]).
    dirty: DirtySet,
}

/// Content equality only, as for [`ProfileDatabase`].
impl PartialEq for PairProfileDatabase {
    fn eq(&self, other: &PairProfileDatabase) -> bool {
        self.base == other.base
            && self.per_pc == other.per_pc
            && self.interval == other.interval
            && self.window == other.window
            && self.total_pairs == other.total_pairs
            && self.incomplete_pairs == other.incomplete_pairs
    }
}

// Hand-written for the same reason as `ProfileDatabase`: the dirty
// set stays out of the encoding, the layout matches the old derive.
impl Serialize for PairProfileDatabase {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("base".to_string(), self.base.to_value()),
            ("per_pc".to_string(), self.per_pc.to_value()),
            ("interval".to_string(), self.interval.to_value()),
            ("window".to_string(), self.window.to_value()),
            ("total_pairs".to_string(), self.total_pairs.to_value()),
            (
                "incomplete_pairs".to_string(),
                self.incomplete_pairs.to_value(),
            ),
        ])
    }
}

impl Deserialize for PairProfileDatabase {
    fn from_value(v: &serde::Value) -> Result<PairProfileDatabase, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::expected("object", "PairProfileDatabase"))?;
        let mut db = PairProfileDatabase {
            base: serde::from_field(obj, "base", "PairProfileDatabase")?,
            per_pc: serde::from_field(obj, "per_pc", "PairProfileDatabase")?,
            interval: serde::from_field(obj, "interval", "PairProfileDatabase")?,
            window: serde::from_field(obj, "window", "PairProfileDatabase")?,
            total_pairs: serde::from_field(obj, "total_pairs", "PairProfileDatabase")?,
            incomplete_pairs: serde::from_field(obj, "incomplete_pairs", "PairProfileDatabase")?,
            dirty: DirtySet::default(),
        };
        db.mark_all_nonzero();
        Ok(db)
    }
}

impl PairProfileDatabase {
    /// Creates an empty paired database.
    pub fn new(program: &Program, interval: u64, window: u64) -> PairProfileDatabase {
        PairProfileDatabase {
            base: program.base(),
            per_pc: vec![PcPairProfile::default(); program.len()],
            interval,
            window,
            total_pairs: 0,
            incomplete_pairs: 0,
            dirty: DirtySet::default(),
        }
    }

    /// The mean major interval S.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The window W.
    pub fn window(&self) -> u64 {
        self.window
    }

    fn index_of(&self, pc: Pc) -> Option<usize> {
        let off = pc.distance_from(self.base);
        (0..self.per_pc.len() as i64)
            .contains(&off)
            .then_some(off as usize)
    }

    /// Aggregates one paired sample using the default *useful overlap*
    /// definition (§5.2.3).
    pub fn add(&mut self, pair: &PairedSample) {
        self.add_with(pair, OverlapKind::UsefulIssue)
    }

    /// Aggregates one paired sample under a chosen overlap definition.
    pub fn add_with(&mut self, pair: &PairedSample, overlap: OverlapKind) {
        let (Some(first), Some(second)) = (&pair.first.record, &pair.second.record) else {
            self.incomplete_pairs += 1;
            return;
        };
        self.total_pairs += 1;
        // Each pair is considered twice (§5.2.2): once per member.
        if let Some(i) = self.index_of(first.pc) {
            let p = &mut self.per_pc[i];
            p.samples += 1;
            if let Some(l) = first.timestamps.in_progress_latency() {
                p.latency_sum += l;
            }
            if useful_overlap(overlap, first, second) {
                p.useful_forward += 1;
            }
            self.dirty.mark(i);
        }
        if let Some(i) = self.index_of(second.pc) {
            let p = &mut self.per_pc[i];
            p.samples += 1;
            if let Some(l) = second.timestamps.in_progress_latency() {
                p.latency_sum += l;
            }
            if useful_overlap(overlap, second, first) {
                p.useful_backward += 1;
            }
            self.dirty.mark(i);
        }
    }

    /// The aggregated state for `pc`.
    pub fn at(&self, pc: Pc) -> PcPairProfile {
        self.index_of(pc)
            .map(|i| self.per_pc[i])
            .unwrap_or_default()
    }

    /// Iterates `(pc, profile)` for PCs with at least one sample.
    pub fn iter(&self) -> impl Iterator<Item = (Pc, &PcPairProfile)> + '_ {
        self.per_pc
            .iter()
            .enumerate()
            .filter(|(_, p)| p.samples > 0)
            .map(|(i, p)| (self.base.advance(i as u64), p))
    }

    fn check_compatible(&self, other: &PairProfileDatabase) -> Result<(), ProfileError> {
        if self.base != other.base || self.per_pc.len() != other.per_pc.len() {
            return Err(ProfileError::Mismatch {
                what: "program image",
            });
        }
        if self.interval != other.interval || self.window != other.window {
            return Err(ProfileError::Mismatch {
                what: "sampling interval/window",
            });
        }
        Ok(())
    }

    /// Accumulates `other` into `self`, exactly as
    /// [`ProfileDatabase::merge`].
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Mismatch`] if the databases describe
    /// different programs, intervals, or windows.
    pub fn merge(&mut self, other: &PairProfileDatabase) -> Result<(), ProfileError> {
        self.check_compatible(other)?;
        for (i, (acc, p)) in self.per_pc.iter_mut().zip(&other.per_pc).enumerate() {
            if !p.is_zero() {
                acc.merge(p);
                self.dirty.mark(i);
            }
        }
        self.total_pairs += other.total_pairs;
        self.incomplete_pairs += other.incomplete_pairs;
        Ok(())
    }

    /// The interval delta `self - earlier`, as
    /// [`ProfileDatabase::delta_since`].
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Mismatch`] if the databases are
    /// incompatible or some counter would go negative.
    pub fn delta_since(
        &self,
        earlier: &PairProfileDatabase,
    ) -> Result<PairProfileDatabase, ProfileError> {
        self.check_compatible(earlier)?;
        let not_earlier = ProfileError::Mismatch {
            what: "snapshot order (counters would go negative)",
        };
        let mut per_pc = Vec::with_capacity(self.per_pc.len());
        for (later, early) in self.per_pc.iter().zip(&earlier.per_pc) {
            per_pc.push(later.checked_sub(early).ok_or(not_earlier.clone())?);
        }
        let mut db = PairProfileDatabase {
            base: self.base,
            per_pc,
            interval: self.interval,
            window: self.window,
            total_pairs: self
                .total_pairs
                .checked_sub(earlier.total_pairs)
                .ok_or(not_earlier.clone())?,
            incomplete_pairs: self
                .incomplete_pairs
                .checked_sub(earlier.incomplete_pairs)
                .ok_or(not_earlier)?,
            dirty: DirtySet::default(),
        };
        db.mark_all_nonzero();
        Ok(db)
    }

    /// The `n` hottest instructions by `field`, descending, PCs
    /// ascending among ties — the paired-database mirror of
    /// [`ProfileDatabase::top_n`], with the same O(len + n log n)
    /// selection.
    pub fn top_n(&self, n: usize, field: PairProfileField) -> Vec<(Pc, PcPairProfile)> {
        let rows: Vec<(Pc, PcPairProfile)> = self
            .iter()
            .filter(|(_, p)| p.field(field) > 0)
            .map(|(pc, p)| (pc, *p))
            .collect();
        select_top_n(rows, n, |p| p.field(field))
    }

    /// The sparse wire header.
    fn header(&self) -> [u64; PAIR_HEADER] {
        [
            self.base.addr(),
            self.per_pc.len() as u64,
            self.interval,
            self.window,
            self.total_pairs,
            self.incomplete_pairs,
        ]
    }

    /// Marks every nonzero row dirty, as
    /// [`ProfileDatabase::mark_all_nonzero`].
    fn mark_all_nonzero(&mut self) {
        for i in 0..self.per_pc.len() {
            if !self.per_pc[i].is_zero() {
                self.dirty.mark(i);
            }
        }
    }

    /// Rebuilds a database from a decoded sparse table.
    fn from_decoded(d: wire::Decoded<PAIR_COLUMNS>) -> Result<PairProfileDatabase, ProfileError> {
        let [base, len, interval, window, total_pairs, incomplete_pairs] = d.header[..] else {
            unreachable!("decode returns exactly PAIR_HEADER words");
        };
        if base % 4 != 0 {
            return Err(wire::malformed("base PC is not 4-byte aligned"));
        }
        let len = usize::try_from(len).map_err(|_| wire::malformed("row count exceeds usize"))?;
        let mut db = PairProfileDatabase {
            base: Pc::new(base),
            per_pc: vec![PcPairProfile::default(); len],
            interval,
            window,
            total_pairs,
            incomplete_pairs,
            dirty: DirtySet::default(),
        };
        for (i, cols) in &d.rows {
            let i = *i as usize;
            if i >= len {
                return Err(wire::malformed("row index beyond table length"));
            }
            db.per_pc[i] = PcPairProfile::from_columns(cols);
            db.dirty.mark(i);
        }
        Ok(db)
    }

    /// Serializes the database per `format`, as
    /// [`ProfileDatabase::encode`] (the sparse format carries the
    /// `PMP1` magic).
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Snapshot`] if serialization fails.
    pub fn encode(&self, format: WireFormat) -> Result<Vec<u8>, ProfileError> {
        match format {
            WireFormat::Sparse => {
                let rows: Vec<(u32, [u64; PAIR_COLUMNS])> = self
                    .per_pc
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| !p.is_zero())
                    .map(|(i, p)| (i as u32, p.to_columns()))
                    .collect();
                Ok(wire::encode(PAIR_SNAP_MAGIC, &self.header(), &rows))
            }
            WireFormat::Dense => serde_json::to_string(self)
                .map(String::into_bytes)
                .map_err(|e| ProfileError::Snapshot {
                    reason: e.to_string(),
                }),
        }
    }

    /// Deserializes a database from [`encode`] output of either
    /// [`WireFormat`].
    ///
    /// [`encode`]: PairProfileDatabase::encode
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Snapshot`] if the bytes do not parse.
    pub fn decode(bytes: &[u8]) -> Result<PairProfileDatabase, ProfileError> {
        if bytes.first() == Some(&b'{') {
            return serde_json::from_slice(bytes).map_err(|e| ProfileError::Snapshot {
                reason: e.to_string(),
            });
        }
        PairProfileDatabase::from_decoded(wire::decode(bytes, PAIR_SNAP_MAGIC, PAIR_HEADER)?)
    }

    /// Extracts everything aggregated since `base` as sparse delta
    /// bytes, advancing `base` — as [`ProfileDatabase::extract_delta`].
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Mismatch`] if `base` is incompatible or
    /// not an earlier state of `self`.
    pub fn extract_delta(
        &mut self,
        base: &mut PairProfileDatabase,
    ) -> Result<Vec<u8>, ProfileError> {
        self.check_compatible(base)?;
        let not_earlier = ProfileError::Mismatch {
            what: "delta base (counters would go negative)",
        };
        let touched = self.dirty.take_sorted();
        let mut rows: Vec<(u32, [u64; PAIR_COLUMNS])> = Vec::with_capacity(touched.len());
        for i in touched {
            let idx = i as usize;
            let diff = self.per_pc[idx]
                .checked_sub(&base.per_pc[idx])
                .ok_or(not_earlier.clone())?;
            if !diff.is_zero() {
                rows.push((i, diff.to_columns()));
                base.per_pc[idx] = self.per_pc[idx];
                base.dirty.mark(idx);
            }
        }
        let header = [
            self.base.addr(),
            self.per_pc.len() as u64,
            self.interval,
            self.window,
            self.total_pairs
                .checked_sub(base.total_pairs)
                .ok_or(not_earlier.clone())?,
            self.incomplete_pairs
                .checked_sub(base.incomplete_pairs)
                .ok_or(not_earlier)?,
        ];
        base.total_pairs = self.total_pairs;
        base.incomplete_pairs = self.incomplete_pairs;
        Ok(wire::encode(PAIR_DELTA_MAGIC, &header, &rows))
    }

    /// Applies delta bytes produced by
    /// [`extract_delta`](PairProfileDatabase::extract_delta), returning
    /// the touched row indices — as [`ProfileDatabase::apply_delta`].
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Snapshot`] if the bytes do not parse,
    /// or [`ProfileError::Mismatch`] on image/interval/window mismatch.
    pub fn apply_delta(&mut self, bytes: &[u8]) -> Result<Vec<u32>, ProfileError> {
        let d: wire::Decoded<PAIR_COLUMNS> = wire::decode(bytes, PAIR_DELTA_MAGIC, PAIR_HEADER)?;
        let [base, len, interval, window, total_pairs, incomplete_pairs] = d.header[..] else {
            unreachable!("decode returns exactly PAIR_HEADER words");
        };
        if base != self.base.addr() || len != self.per_pc.len() as u64 {
            return Err(ProfileError::Mismatch {
                what: "program image",
            });
        }
        if interval != self.interval || window != self.window {
            return Err(ProfileError::Mismatch {
                what: "sampling interval/window",
            });
        }
        let mut touched = Vec::with_capacity(d.rows.len());
        for (i, cols) in &d.rows {
            let idx = *i as usize;
            if idx >= self.per_pc.len() {
                return Err(wire::malformed("row index beyond table length"));
            }
            self.per_pc[idx].merge(&PcPairProfile::from_columns(cols));
            self.dirty.mark(idx);
            touched.push(*i);
        }
        self.total_pairs += total_pairs;
        self.incomplete_pairs += incomplete_pairs;
        Ok(touched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profileme_cfg::BranchHistory;
    use profileme_isa::ProgramBuilder;
    use profileme_uarch::{CompletedSample, TagId, Timestamps};

    fn program() -> Program {
        let mut b = ProgramBuilder::new();
        b.function("f");
        b.nop();
        b.nop();
        b.halt();
        b.build().unwrap()
    }

    fn record(pc: Pc, retired: bool, events: EventSet) -> CompletedSample {
        CompletedSample {
            tag: TagId(0),
            seq: 0,
            pc,
            context: 1,
            class: profileme_isa::OpClass::Nop,
            events,
            retired,
            eff_addr: None,
            taken: None,
            history: BranchHistory::new(),
            timestamps: Timestamps {
                fetched: 10,
                retire_ready: Some(25),
                ..Timestamps::default()
            },
            latencies: None,
            mem_latency: None,
        }
    }

    #[test]
    fn aggregation_and_estimates() {
        let p = program();
        let mut db = ProfileDatabase::new(&p, 100);
        let pc = p.entry();
        let mut miss = EventSet::new();
        miss.set(EventSet::DCACHE_MISS);
        for _ in 0..3 {
            db.add(&Sample {
                record: Some(record(pc, true, miss)),
                selected_cycle: 0,
            });
        }
        db.add(&Sample {
            record: Some(record(pc, false, EventSet::new())),
            selected_cycle: 0,
        });
        db.add(&Sample {
            record: None,
            selected_cycle: 0,
        });
        let prof = db.at(pc);
        assert_eq!(prof.samples, 4);
        assert_eq!(prof.retired, 3);
        assert_eq!(prof.aborted, 1);
        assert_eq!(prof.dcache_misses, 3);
        assert_eq!(prof.in_progress_sum, 4 * 15);
        assert_eq!(db.invalid_samples, 1);
        assert_eq!(db.estimated_retires(pc).value(), 300.0);
        assert_eq!(db.estimated_dcache_misses(pc).value(), 300.0);
        assert_eq!(db.abort_rate(pc), Some(0.25));
        assert_eq!(db.iter().count(), 1);
    }

    #[test]
    fn out_of_image_samples_are_ignored() {
        let p = program();
        let mut db = ProfileDatabase::new(&p, 10);
        db.add(&Sample {
            record: Some(record(Pc::new(0x4), true, EventSet::new())),
            selected_cycle: 0,
        });
        assert_eq!(db.total_samples, 0);
    }

    #[test]
    fn paired_aggregation_counts_both_positions() {
        let p = program();
        let mut db = PairProfileDatabase::new(&p, 1000, 8);
        let a = p.entry();
        let b = p.entry().advance(1);
        // J (second) issues inside I's window and retires: useful forward
        // overlap for I, and I does not overlap J's window usefully
        // (I has no issue timestamp here).
        let mut i_rec = record(a, true, EventSet::new());
        i_rec.timestamps = Timestamps {
            fetched: 0,
            retire_ready: Some(30),
            ..Timestamps::default()
        };
        let mut j_rec = record(b, true, EventSet::new());
        j_rec.timestamps = Timestamps {
            fetched: 5,
            issued: Some(10),
            retire_ready: Some(12),
            ..Timestamps::default()
        };
        let pair = PairedSample {
            first: Sample {
                record: Some(i_rec),
                selected_cycle: 0,
            },
            second: Sample {
                record: Some(j_rec),
                selected_cycle: 5,
            },
            distance_instructions: 5,
            distance_cycles: 5,
        };
        db.add(&pair);
        assert_eq!(db.total_pairs, 1);
        let pa = db.at(a);
        assert_eq!(pa.samples, 1);
        assert_eq!(pa.useful_forward, 1);
        assert_eq!(pa.latency_sum, 30);
        let pb = db.at(b);
        assert_eq!(pb.samples, 1);
        assert_eq!(
            pb.useful_backward, 0,
            "I never issued, so it cannot usefully overlap J"
        );
        assert_eq!(pb.latency_sum, 7);
    }

    #[test]
    fn incomplete_pairs_are_counted_not_aggregated() {
        let p = program();
        let mut db = PairProfileDatabase::new(&p, 1000, 8);
        let pair = PairedSample {
            first: Sample {
                record: None,
                selected_cycle: 0,
            },
            second: Sample {
                record: None,
                selected_cycle: 0,
            },
            distance_instructions: 1,
            distance_cycles: 0,
        };
        db.add(&pair);
        assert_eq!(db.total_pairs, 0);
        assert_eq!(db.incomplete_pairs, 1);
    }
}
