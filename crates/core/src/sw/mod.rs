//! The ProfileMe profiling software (§5): interrupt drivers, the profile
//! database with incremental aggregation, statistical estimators,
//! concurrency analyses over paired samples, and path profiling.

mod concurrency;
mod database;
pub(crate) mod driver;
mod estimate;
mod pathprof;
mod report;
mod topn;
mod wire;

pub use concurrency::{
    estimate_pair_metric, instructions_retired_around, neighborhood_ipc, pipeline_population,
    useful_overlap, wasted_issue_slots, OverlapKind, PairMetric, StagePopulation, WastedSlots,
};
pub use database::{
    PairProfileDatabase, PairProfileField, PcPairProfile, PcProfile, ProfileDatabase, ProfileField,
    WireFormat,
};
pub use driver::{
    run_ground_truth, run_hardware, HardwareRun, PairedRun, SampleCollector, SingleRun,
};
pub use estimate::{confidence_interval, estimate_total, expected_cov, Estimate};
pub use pathprof::{PathProfiler, PathScheme, ReconstructionOutcome};
pub use report::{procedure_summaries, ProcedureSummary};
pub use topn::TopNIndex;
