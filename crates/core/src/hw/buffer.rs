//! Sample buffering (§4.3): multiple Profile Register copies so several
//! samples can be collected per interrupt, amortizing delivery cost.

/// A bounded buffer of samples backed by replicated profile registers.
///
/// # Example
///
/// ```
/// use profileme_core::SampleBuffer;
/// let mut b: SampleBuffer<u32> = SampleBuffer::new(2);
/// assert!(!b.push(1));
/// assert!(b.push(2)); // now full: time to interrupt
/// assert!(b.is_full());
/// assert_eq!(b.drain(), vec![1, 2]);
/// assert!(b.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct SampleBuffer<T> {
    slots: Vec<T>,
    depth: usize,
}

impl<T> SampleBuffer<T> {
    /// Creates a buffer with `depth` register sets.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> SampleBuffer<T> {
        assert!(depth > 0, "buffer needs at least one register set");
        SampleBuffer {
            slots: Vec::with_capacity(depth),
            depth,
        }
    }

    /// Number of register sets.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Stores a sample; returns `true` when the buffer is now full (the
    /// hardware should raise an interrupt).
    ///
    /// # Panics
    ///
    /// Panics if called while full — hardware must stall selection
    /// instead of overwriting samples.
    pub fn push(&mut self, sample: T) -> bool {
        assert!(self.slots.len() < self.depth, "sample buffer overflow");
        self.slots.push(sample);
        self.is_full()
    }

    /// Whether every register set is occupied.
    pub fn is_full(&self) -> bool {
        self.slots.len() == self.depth
    }

    /// Whether no samples are buffered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of buffered samples.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Removes and returns all buffered samples (the interrupt handler's
    /// read-out).
    pub fn drain(&mut self) -> Vec<T> {
        std::mem::take(&mut self.slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_reports_full_exactly_at_depth() {
        let mut b = SampleBuffer::new(3);
        assert!(!b.push('a'));
        assert!(!b.push('b'));
        assert!(b.push('c'));
        assert_eq!(b.len(), 3);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut b = SampleBuffer::new(1);
        b.push(1);
        b.push(2);
    }

    #[test]
    fn drain_resets() {
        let mut b = SampleBuffer::new(2);
        b.push(1);
        b.push(2);
        assert_eq!(b.drain(), vec![1, 2]);
        assert!(b.is_empty());
        assert!(!b.is_full());
    }
}
