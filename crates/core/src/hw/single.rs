//! Single-instruction sampling hardware (§4.1).

use crate::hw::{IntervalGenerator, SampleBuffer, SelectionMode};
use crate::Sample;
use profileme_uarch::{
    CompletedSample, FetchOpportunity, InterruptRequest, ProfilingHardware, TagDecision, TagId,
};

/// Configuration for [`ProfileMeHardware`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileMeConfig {
    /// Mean sampling interval S, in units of the selection mode.
    pub mean_interval: u64,
    /// Randomize intervals ±50% (disable only for the bias ablation).
    pub randomize: bool,
    /// What the Fetched Instruction Counter counts.
    pub selection: SelectionMode,
    /// Profile-register sets buffered per interrupt (§4.3).
    pub buffer_depth: usize,
    /// Cycles between the interrupt request and its recognition.
    pub interrupt_skid: u64,
    /// Seed for interval randomization.
    pub seed: u64,
}

impl Default for ProfileMeConfig {
    fn default() -> ProfileMeConfig {
        ProfileMeConfig {
            mean_interval: 1024,
            randomize: true,
            selection: SelectionMode::FetchedInstructions,
            buffer_depth: 1,
            interrupt_skid: 2,
            seed: 0x9e3779b9,
        }
    }
}

impl ProfileMeConfig {
    /// Checks the configuration for values that would make the hardware
    /// misbehave silently. [`SessionBuilder::build`](crate::SessionBuilder::build)
    /// calls this; the deprecated positional drivers never did, which is
    /// exactly the footgun the [`Session`](crate::Session) API closes.
    ///
    /// # Errors
    ///
    /// Rejects `mean_interval == 0` (the counter would select on every
    /// fetch and the estimator's interval S would be meaningless) and
    /// `buffer_depth == 0` (no Profile Register set to deliver samples).
    pub fn validate(&self) -> Result<(), crate::ProfileError> {
        if self.mean_interval == 0 {
            return Err(crate::ProfileError::config(
                "mean_interval",
                "must be at least 1 (got 0)",
            ));
        }
        if self.buffer_depth == 0 {
            return Err(crate::ProfileError::config(
                "buffer_depth",
                "must be at least 1 (got 0)",
            ));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct State {
    /// Countdown to the next selection; 0 means a selection is *due*.
    remaining: u64,
    /// A tagged instruction is in flight (one tag bit: at most one).
    waiting: bool,
    /// All register sets are full; selection pauses until software drains.
    stalled: bool,
}

/// The ProfileMe sampling hardware for a single in-flight profiled
/// instruction: a one-bit tag, one (buffered) set of Profile Registers,
/// the Fetched Instruction Counter, and overflow interrupt generation.
///
/// Attach it to a [`Pipeline`](profileme_uarch::Pipeline); the interrupt
/// handler reads samples with
/// [`drain_samples`](ProfileMeHardware::drain_samples).
#[derive(Debug, Clone)]
pub struct ProfileMeHardware {
    config: ProfileMeConfig,
    intervals: IntervalGenerator,
    state: State,
    buffer: SampleBuffer<Sample>,
    pending_interrupt: bool,
    selections: u64,
    invalid_selections: u64,
    dropped_selections: u64,
}

impl ProfileMeHardware {
    /// Creates armed sampling hardware.
    ///
    /// # Panics
    ///
    /// Panics if the interval or buffer depth is zero.
    pub fn new(config: ProfileMeConfig) -> ProfileMeHardware {
        let mut intervals =
            IntervalGenerator::new(config.mean_interval, config.randomize, config.seed);
        let first = intervals.next_interval();
        ProfileMeHardware {
            intervals,
            state: State {
                remaining: first,
                waiting: false,
                stalled: false,
            },
            buffer: SampleBuffer::new(config.buffer_depth),
            pending_interrupt: false,
            selections: 0,
            invalid_selections: 0,
            dropped_selections: 0,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ProfileMeConfig {
        &self.config
    }

    /// Total selections fired (valid or not).
    pub fn selections(&self) -> u64 {
        self.selections
    }

    /// Selections that landed on a slot with no predicted-path
    /// instruction (only possible when counting fetch opportunities).
    pub fn invalid_selections(&self) -> u64 {
        self.invalid_selections
    }

    /// Selections dropped because the tag was busy (the single-tag dead
    /// time that N-way sampling removes).
    pub fn dropped_selections(&self) -> u64 {
        self.dropped_selections
    }

    /// Reads out and clears the buffered samples, re-arming selection if
    /// it had stalled on a full buffer. Called by the interrupt handler —
    /// and once more at the end of a run to collect a partial buffer.
    pub fn drain_samples(&mut self) -> Vec<Sample> {
        let samples = self.buffer.drain();
        self.state.stalled = false;
        samples
    }

    fn deposit(&mut self, sample: Sample) {
        if self.buffer.push(sample) {
            self.pending_interrupt = true;
        }
        self.state.stalled = self.buffer.is_full();
    }
}

impl ProfilingHardware for ProfileMeHardware {
    fn on_fetch_opportunity(&mut self, opp: &FetchOpportunity) -> TagDecision {
        let counts = match self.config.selection {
            SelectionMode::FetchedInstructions => opp.on_predicted_path,
            SelectionMode::FetchOpportunities => true,
        };
        if !counts || self.state.stalled {
            return TagDecision::Pass;
        }
        // The counter keeps running while a tagged instruction is in
        // flight. A selection that comes due while the tag is busy is
        // DROPPED (and the counter re-armed): firing it later, when the
        // tag frees, would phase-lock selection to completion times and
        // bias the sample toward instructions that follow long-latency
        // ones. Dropping loses rate, never accuracy; software calibrates
        // estimates with the *measured* average interval (`sw::driver`).
        self.state.remaining -= 1;
        if self.state.remaining > 0 {
            return TagDecision::Pass;
        }
        if self.state.waiting {
            self.dropped_selections += 1;
            self.state.remaining = self.intervals.next_interval();
            return TagDecision::Pass;
        }
        self.selections += 1;
        self.state.remaining = self.intervals.next_interval();
        if opp.on_predicted_path {
            self.state.waiting = true;
            TagDecision::Tag(TagId(0))
        } else {
            // Selected an opportunity with no predicted-path instruction:
            // deliver an empty sample (§4.1.1's useful-rate cost).
            self.invalid_selections += 1;
            self.deposit(Sample {
                record: None,
                selected_cycle: opp.cycle,
            });
            TagDecision::Pass
        }
    }

    fn on_tagged_complete(&mut self, record: &CompletedSample) {
        debug_assert_eq!(record.tag, TagId(0));
        debug_assert!(self.state.waiting);
        self.state.waiting = false;
        self.deposit(Sample {
            record: Some(record.clone()),
            selected_cycle: record.timestamps.fetched,
        });
    }

    fn take_interrupt(&mut self) -> Option<InterruptRequest> {
        if self.pending_interrupt {
            self.pending_interrupt = false;
            Some(InterruptRequest {
                skid: self.config.interrupt_skid,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profileme_isa::Pc;

    fn opp(on_path: bool, cycle: u64) -> FetchOpportunity {
        FetchOpportunity {
            cycle,
            slot: 0,
            pc: on_path.then_some(Pc::new(0x1000)),
            inst: on_path.then(profileme_isa::Inst::nop),
            on_predicted_path: on_path,
            seq: on_path.then_some(1),
        }
    }

    fn fixed(interval: u64, depth: usize, selection: SelectionMode) -> ProfileMeHardware {
        ProfileMeHardware::new(ProfileMeConfig {
            mean_interval: interval,
            randomize: false,
            selection,
            buffer_depth: depth,
            interrupt_skid: 2,
            seed: 1,
        })
    }

    fn completed(tag: TagId) -> CompletedSample {
        CompletedSample {
            tag,
            seq: 1,
            pc: Pc::new(0x1000),
            context: 1,
            class: profileme_isa::OpClass::Nop,
            events: profileme_uarch::EventSet::new(),
            retired: true,
            eff_addr: None,
            taken: None,
            history: profileme_cfg::BranchHistory::new(),
            timestamps: profileme_uarch::Timestamps::default(),
            latencies: None,
            mem_latency: None,
        }
    }

    #[test]
    fn selects_every_nth_instruction() {
        let mut hw = fixed(3, 1, SelectionMode::FetchedInstructions);
        assert_eq!(hw.on_fetch_opportunity(&opp(true, 0)), TagDecision::Pass);
        assert_eq!(hw.on_fetch_opportunity(&opp(true, 0)), TagDecision::Pass);
        assert_eq!(
            hw.on_fetch_opportunity(&opp(true, 1)),
            TagDecision::Tag(TagId(0))
        );
        // While waiting, nothing else is selected.
        assert_eq!(hw.on_fetch_opportunity(&opp(true, 1)), TagDecision::Pass);
        hw.on_tagged_complete(&completed(TagId(0)));
        assert!(hw.take_interrupt().is_some());
        assert_eq!(hw.drain_samples().len(), 1);
    }

    #[test]
    fn off_path_slots_do_not_count_in_instruction_mode() {
        let mut hw = fixed(2, 1, SelectionMode::FetchedInstructions);
        for _ in 0..10 {
            assert_eq!(hw.on_fetch_opportunity(&opp(false, 0)), TagDecision::Pass);
        }
        assert_eq!(hw.on_fetch_opportunity(&opp(true, 0)), TagDecision::Pass);
        assert_eq!(
            hw.on_fetch_opportunity(&opp(true, 0)),
            TagDecision::Tag(TagId(0))
        );
    }

    #[test]
    fn opportunity_mode_can_select_empty_slots() {
        let mut hw = fixed(2, 1, SelectionMode::FetchOpportunities);
        assert_eq!(hw.on_fetch_opportunity(&opp(true, 0)), TagDecision::Pass);
        assert_eq!(hw.on_fetch_opportunity(&opp(false, 0)), TagDecision::Pass);
        // The empty selection produced an invalid sample and an interrupt.
        assert_eq!(hw.invalid_selections(), 1);
        assert!(hw.take_interrupt().is_some());
        let samples = hw.drain_samples();
        assert_eq!(samples.len(), 1);
        assert!(!samples[0].is_valid());
    }

    #[test]
    fn buffering_defers_the_interrupt() {
        let mut hw = fixed(1, 3, SelectionMode::FetchedInstructions);
        for i in 0..2 {
            assert_eq!(
                hw.on_fetch_opportunity(&opp(true, i)),
                TagDecision::Tag(TagId(0))
            );
            hw.on_tagged_complete(&completed(TagId(0)));
            assert_eq!(
                hw.take_interrupt(),
                None,
                "no interrupt before the buffer fills"
            );
        }
        assert_eq!(
            hw.on_fetch_opportunity(&opp(true, 2)),
            TagDecision::Tag(TagId(0))
        );
        hw.on_tagged_complete(&completed(TagId(0)));
        assert!(hw.take_interrupt().is_some());
        // Selection stalls until software drains.
        assert_eq!(hw.on_fetch_opportunity(&opp(true, 3)), TagDecision::Pass);
        assert_eq!(hw.drain_samples().len(), 3);
        assert_eq!(
            hw.on_fetch_opportunity(&opp(true, 4)),
            TagDecision::Tag(TagId(0))
        );
    }
}
