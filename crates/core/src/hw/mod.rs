//! The ProfileMe hardware model (§4): instruction selection, the
//! ProfileMe tag, Profile Registers, paired sampling, and buffered
//! interrupt delivery.

mod buffer;
mod nway;
mod paired;
mod select;
mod single;

pub use buffer::SampleBuffer;
pub use nway::{NWayConfig, NWayHardware};
pub use paired::{PairedConfig, PairedHardware};
pub use select::{IntervalGenerator, SelectionMode};
pub use single::{ProfileMeConfig, ProfileMeHardware};
