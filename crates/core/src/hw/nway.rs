//! N-way sampling: several instructions profiled simultaneously.
//!
//! §4.1.2: "In the lowest-cost implementation, the tag is set for at most
//! one in-flight instruction at a time, so that a single bit suffices
//! [...] for N-way sampling, ⌈log(N+1)⌉ bits are needed" — and §4 notes
//! the hardware "scales linearly with the number of in-flight
//! instructions that may be sampled simultaneously". This module
//! implements that generalization: N tag values, N live Profile Register
//! sets, one selection counter. Its payoff is at *high* sampling rates,
//! where a single-tag unit loses selections to dead time while a sampled
//! instruction is still in flight (measured by `ablation_nway`).

use crate::hw::{IntervalGenerator, SampleBuffer, SelectionMode};
use crate::Sample;
use profileme_uarch::{
    CompletedSample, FetchOpportunity, InterruptRequest, ProfilingHardware, TagDecision, TagId,
};

/// Configuration for [`NWayHardware`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NWayConfig {
    /// Number of simultaneously profiled instructions (tag values).
    pub ways: usize,
    /// Mean sampling interval S, in units of the selection mode.
    pub mean_interval: u64,
    /// Randomize intervals ±50%.
    pub randomize: bool,
    /// What the selection counter counts.
    pub selection: SelectionMode,
    /// Samples buffered per interrupt.
    pub buffer_depth: usize,
    /// Cycles between interrupt request and recognition.
    pub interrupt_skid: u64,
    /// Seed for interval randomization.
    pub seed: u64,
}

impl Default for NWayConfig {
    fn default() -> NWayConfig {
        NWayConfig {
            ways: 2,
            mean_interval: 1024,
            randomize: true,
            selection: SelectionMode::FetchedInstructions,
            buffer_depth: 4,
            interrupt_skid: 2,
            seed: 0x0041_57a9,
        }
    }
}

impl NWayConfig {
    /// Checks the configuration, as
    /// [`ProfileMeConfig::validate`](crate::ProfileMeConfig::validate)
    /// does for the single-tag hardware.
    ///
    /// # Errors
    ///
    /// Rejects zero `ways`, `mean_interval`, or `buffer_depth`.
    pub fn validate(&self) -> Result<(), crate::ProfileError> {
        if self.ways == 0 {
            return Err(crate::ProfileError::config(
                "ways",
                "must be at least 1 (got 0)",
            ));
        }
        if self.mean_interval == 0 {
            return Err(crate::ProfileError::config(
                "mean_interval",
                "must be at least 1 (got 0)",
            ));
        }
        if self.buffer_depth == 0 {
            return Err(crate::ProfileError::config(
                "buffer_depth",
                "must be at least 1 (got 0)",
            ));
        }
        Ok(())
    }
}

/// Sampling hardware with `N` concurrently live Profile Register sets.
///
/// Selection works as in [`ProfileMeHardware`](crate::ProfileMeHardware),
/// but a selection that comes due is assigned any *free* tag; only when
/// all `N` are occupied is it dropped. The counter re-arms at every
/// selection point, so back-to-back selections can overlap in flight.
#[derive(Debug, Clone)]
pub struct NWayHardware {
    config: NWayConfig,
    intervals: IntervalGenerator,
    remaining: u64,
    busy: Vec<bool>,
    /// Completed samples whose way's registers still hold them because
    /// the shared buffer was full at completion; the way stays busy until
    /// software drains.
    parked: Vec<Option<Sample>>,
    stalled: bool,
    buffer: SampleBuffer<Sample>,
    pending_interrupt: bool,
    selections: u64,
    invalid_selections: u64,
    dropped_selections: u64,
}

impl NWayHardware {
    /// Creates armed N-way sampling hardware.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or greater than 127 (TagId is a byte,
    /// with the sign bit kept clear for clarity), or if the interval or
    /// buffer depth is zero.
    pub fn new(config: NWayConfig) -> NWayHardware {
        assert!((1..=127).contains(&config.ways), "ways must be in 1..=127");
        let mut intervals =
            IntervalGenerator::new(config.mean_interval, config.randomize, config.seed);
        let first = intervals.next_interval();
        NWayHardware {
            intervals,
            remaining: first,
            busy: vec![false; config.ways],
            parked: vec![None; config.ways],
            stalled: false,
            buffer: SampleBuffer::new(config.buffer_depth),
            pending_interrupt: false,
            selections: 0,
            invalid_selections: 0,
            dropped_selections: 0,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &NWayConfig {
        &self.config
    }

    /// Total selections fired.
    pub fn selections(&self) -> u64 {
        self.selections
    }

    /// Selections that landed on empty slots (opportunity counting only).
    pub fn invalid_selections(&self) -> u64 {
        self.invalid_selections
    }

    /// Selections dropped because every tag was occupied — the dead time
    /// N-way sampling exists to remove.
    pub fn dropped_selections(&self) -> u64 {
        self.dropped_selections
    }

    /// Reads out and clears buffered samples (including any parked in
    /// their way's registers), unstalling if needed.
    pub fn drain_samples(&mut self) -> Vec<Sample> {
        self.stalled = false;
        let mut samples = self.buffer.drain();
        for (way, slot) in self.parked.iter_mut().enumerate() {
            if let Some(s) = slot.take() {
                samples.push(s);
                self.busy[way] = false;
            }
        }
        samples
    }

    fn deposit(&mut self, sample: Sample) {
        if self.buffer.push(sample) {
            self.pending_interrupt = true;
        }
        self.stalled = self.buffer.is_full();
    }
}

impl ProfilingHardware for NWayHardware {
    fn on_fetch_opportunity(&mut self, opp: &FetchOpportunity) -> TagDecision {
        let counts = match self.config.selection {
            SelectionMode::FetchedInstructions => opp.on_predicted_path,
            SelectionMode::FetchOpportunities => true,
        };
        if !counts || self.stalled {
            return TagDecision::Pass;
        }
        self.remaining -= 1;
        if self.remaining > 0 {
            return TagDecision::Pass;
        }
        // Re-arm unconditionally; a selection with no free tag is DROPPED
        // rather than deferred — deferral would fire the moment a tag
        // frees, phase-locking selection to completion times and biasing
        // the sample (see `profileme-core`'s N-way tests).
        self.remaining = self.intervals.next_interval();
        let Some(free) = self.busy.iter().position(|&b| !b) else {
            self.dropped_selections += 1;
            return TagDecision::Pass;
        };
        self.selections += 1;
        if opp.on_predicted_path {
            self.busy[free] = true;
            TagDecision::Tag(TagId(free as u8))
        } else {
            self.invalid_selections += 1;
            self.deposit(Sample {
                record: None,
                selected_cycle: opp.cycle,
            });
            TagDecision::Pass
        }
    }

    fn on_tagged_complete(&mut self, record: &CompletedSample) {
        let way = record.tag.0 as usize;
        debug_assert!(self.busy[way], "completion for an inactive tag");
        let sample = Sample {
            record: Some(record.clone()),
            selected_cycle: record.timestamps.fetched,
        };
        if self.buffer.is_full() {
            // Shared buffer full: the sample stays in this way's own
            // registers; the way remains occupied until the handler reads
            // it out.
            self.parked[way] = Some(sample);
            self.pending_interrupt = true;
        } else {
            self.busy[way] = false;
            self.deposit(sample);
        }
    }

    fn take_interrupt(&mut self) -> Option<InterruptRequest> {
        if self.pending_interrupt {
            self.pending_interrupt = false;
            Some(InterruptRequest {
                skid: self.config.interrupt_skid,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profileme_cfg::BranchHistory;
    use profileme_isa::Pc;
    use profileme_uarch::{EventSet, Timestamps};

    fn opp(cycle: u64) -> FetchOpportunity {
        FetchOpportunity {
            cycle,
            slot: 0,
            pc: Some(Pc::new(0x1000)),
            inst: Some(profileme_isa::Inst::nop()),
            on_predicted_path: true,
            seq: Some(1),
        }
    }

    fn completed(tag: TagId) -> CompletedSample {
        CompletedSample {
            tag,
            seq: 1,
            pc: Pc::new(0x1000),
            context: 1,
            class: profileme_isa::OpClass::Nop,
            events: EventSet::new(),
            retired: true,
            eff_addr: None,
            taken: None,
            history: BranchHistory::new(),
            timestamps: Timestamps::default(),
            latencies: None,
            mem_latency: None,
        }
    }

    fn hw(ways: usize, interval: u64) -> NWayHardware {
        NWayHardware::new(NWayConfig {
            ways,
            mean_interval: interval,
            randomize: false,
            buffer_depth: 64,
            ..NWayConfig::default()
        })
    }

    #[test]
    fn overlapping_selections_use_distinct_tags() {
        let mut h = hw(3, 1);
        let mut tags = Vec::new();
        for c in 0..3 {
            match h.on_fetch_opportunity(&opp(c)) {
                TagDecision::Tag(t) => tags.push(t),
                TagDecision::Pass => panic!("expected a tag at cycle {c}"),
            }
        }
        tags.sort_by_key(|t| t.0);
        assert_eq!(tags, vec![TagId(0), TagId(1), TagId(2)]);
        // All busy: the fourth defers.
        assert_eq!(h.on_fetch_opportunity(&opp(3)), TagDecision::Pass);
        assert_eq!(h.dropped_selections(), 1);
        // A completion frees its way for reuse.
        h.on_tagged_complete(&completed(TagId(1)));
        assert_eq!(h.on_fetch_opportunity(&opp(4)), TagDecision::Tag(TagId(1)));
    }

    #[test]
    fn one_way_drops_selections_while_busy() {
        let mut h = hw(1, 2);
        assert_eq!(h.on_fetch_opportunity(&opp(0)), TagDecision::Pass);
        assert_eq!(h.on_fetch_opportunity(&opp(1)), TagDecision::Tag(TagId(0)));
        // While the tag is busy, due selections are dropped (never
        // deferred to the moment the tag frees).
        for c in 2..10 {
            assert_eq!(h.on_fetch_opportunity(&opp(c)), TagDecision::Pass);
        }
        assert_eq!(
            h.dropped_selections(),
            4,
            "every second opportunity came due"
        );
        h.on_tagged_complete(&completed(TagId(0)));
        // Free again: the next due selection fires on schedule.
        assert_eq!(h.on_fetch_opportunity(&opp(10)), TagDecision::Pass);
        assert_eq!(h.on_fetch_opportunity(&opp(11)), TagDecision::Tag(TagId(0)));
    }

    #[test]
    fn buffer_full_stalls_counting() {
        let mut h = NWayHardware::new(NWayConfig {
            ways: 2,
            mean_interval: 1,
            randomize: false,
            buffer_depth: 1,
            ..NWayConfig::default()
        });
        assert!(matches!(
            h.on_fetch_opportunity(&opp(0)),
            TagDecision::Tag(_)
        ));
        h.on_tagged_complete(&completed(TagId(0)));
        assert!(h.take_interrupt().is_some());
        assert_eq!(h.on_fetch_opportunity(&opp(1)), TagDecision::Pass);
        assert_eq!(h.drain_samples().len(), 1);
        assert!(matches!(
            h.on_fetch_opportunity(&opp(2)),
            TagDecision::Tag(_)
        ));
    }
}
