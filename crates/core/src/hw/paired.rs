//! Paired sampling hardware (§4.2): two tag values, two sets of Profile
//! Registers, major/minor sampling intervals, and the inter-pair fetch
//! latency register.

use crate::hw::{IntervalGenerator, SampleBuffer, SelectionMode};
use crate::{PairedSample, Sample};
use profileme_uarch::{
    CompletedSample, FetchOpportunity, InterruptRequest, ProfilingHardware, TagDecision, TagId,
};

/// Configuration for [`PairedHardware`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairedConfig {
    /// Mean *major* interval: fetched instructions between pairs.
    pub mean_major_interval: u64,
    /// Window W: the minor interval is drawn uniformly from `1..=window`.
    /// Chosen to cover any pair of instructions that can be in flight
    /// together (at most the in-flight window size).
    pub window: u64,
    /// Randomize the major interval ±50%.
    pub randomize: bool,
    /// What the counters count.
    pub selection: SelectionMode,
    /// Pairs buffered per interrupt.
    pub buffer_depth: usize,
    /// Cycles between interrupt request and recognition.
    pub interrupt_skid: u64,
    /// Seed for interval randomization.
    pub seed: u64,
}

impl Default for PairedConfig {
    fn default() -> PairedConfig {
        PairedConfig {
            mean_major_interval: 1024,
            window: 64,
            randomize: true,
            selection: SelectionMode::FetchedInstructions,
            buffer_depth: 1,
            interrupt_skid: 2,
            seed: 0x517c_c1b7,
        }
    }
}

impl PairedConfig {
    /// Checks the configuration, as
    /// [`ProfileMeConfig::validate`](crate::ProfileMeConfig::validate)
    /// does for single sampling.
    ///
    /// # Errors
    ///
    /// Rejects a zero major interval (pairs would be selected on every
    /// fetch), a zero window (the minor interval is drawn from
    /// `1..=window`, so there would be no legal draw), and a zero
    /// buffer depth.
    pub fn validate(&self) -> Result<(), crate::ProfileError> {
        if self.mean_major_interval == 0 {
            return Err(crate::ProfileError::config(
                "mean_major_interval",
                "must be at least 1 (got 0)",
            ));
        }
        if self.window == 0 {
            return Err(crate::ProfileError::config(
                "window",
                "must be at least 1 (got 0): the minor interval is drawn from 1..=window",
            ));
        }
        if self.buffer_depth == 0 {
            return Err(crate::ProfileError::config(
                "buffer_depth",
                "must be at least 1 (got 0)",
            ));
        }
        Ok(())
    }
}

/// An in-progress pair: selections made, completions awaited.
#[derive(Debug, Clone, Default)]
struct PendingPair {
    first: Option<Sample>,
    second: Option<Sample>,
    first_cycle: u64,
    second_cycle: Option<u64>,
    distance_instructions: u64,
    /// Second has been *selected* (tagged or delivered empty).
    second_selected: bool,
}

impl PendingPair {
    fn complete(&self) -> bool {
        self.first.is_some() && self.second_selected && self.second_is_resolved()
    }

    fn second_is_resolved(&self) -> bool {
        // Either an empty selection (already a Sample) or a completed
        // tagged instruction.
        self.second.is_some()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    CountingMajor { remaining: u64 },
    CountingMinor { remaining: u64 },
    WaitingCompletions,
    Stalled,
}

/// Paired-sampling hardware: selects a first instruction after the major
/// interval, a second after a uniformly random minor interval in
/// `1..=W`, records both in separate Profile Register sets, captures the
/// fetch latency between them, and interrupts only when both have
/// retired or aborted.
#[derive(Debug, Clone)]
pub struct PairedHardware {
    config: PairedConfig,
    intervals: IntervalGenerator,
    state: State,
    pending: PendingPair,
    buffer: SampleBuffer<PairedSample>,
    pending_interrupt: bool,
    pairs_selected: u64,
}

impl PairedHardware {
    /// Creates armed paired-sampling hardware.
    ///
    /// # Panics
    ///
    /// Panics if the interval, window, or buffer depth is zero.
    pub fn new(config: PairedConfig) -> PairedHardware {
        assert!(config.window > 0, "pair window must be positive");
        let mut intervals =
            IntervalGenerator::new(config.mean_major_interval, config.randomize, config.seed);
        let first = intervals.next_interval();
        PairedHardware {
            intervals,
            state: State::CountingMajor { remaining: first },
            pending: PendingPair::default(),
            buffer: SampleBuffer::new(config.buffer_depth),
            pending_interrupt: false,
            pairs_selected: 0,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PairedConfig {
        &self.config
    }

    /// Number of pairs whose first selection has fired.
    pub fn pairs_selected(&self) -> u64 {
        self.pairs_selected
    }

    /// Reads out and clears buffered pairs, re-arming if stalled.
    pub fn drain_pairs(&mut self) -> Vec<PairedSample> {
        let pairs = self.buffer.drain();
        if self.state == State::Stalled {
            self.arm_major();
        }
        pairs
    }

    fn arm_major(&mut self) {
        self.state = State::CountingMajor {
            remaining: self.intervals.next_interval(),
        };
        self.pending = PendingPair::default();
    }

    fn finish_pair_if_complete(&mut self) {
        if !self.pending.complete() {
            return;
        }
        let p = std::mem::take(&mut self.pending);
        let pair = PairedSample {
            distance_cycles: p.second_cycle.unwrap_or(p.first_cycle) - p.first_cycle,
            distance_instructions: p.distance_instructions,
            first: p.first.expect("complete pair has a first sample"),
            second: p.second.expect("complete pair has a second sample"),
        };
        if self.buffer.push(pair) {
            self.pending_interrupt = true;
        }
        if self.buffer.is_full() {
            self.state = State::Stalled;
        } else {
            self.arm_major();
        }
    }
}

impl ProfilingHardware for PairedHardware {
    fn on_fetch_opportunity(&mut self, opp: &FetchOpportunity) -> TagDecision {
        let counts = match self.config.selection {
            SelectionMode::FetchedInstructions => opp.on_predicted_path,
            SelectionMode::FetchOpportunities => true,
        };
        if !counts {
            return TagDecision::Pass;
        }
        match &mut self.state {
            State::CountingMajor { remaining } => {
                *remaining -= 1;
                if *remaining > 0 {
                    return TagDecision::Pass;
                }
                self.pairs_selected += 1;
                let minor = self.intervals.next_minor(self.config.window);
                self.pending = PendingPair {
                    first_cycle: opp.cycle,
                    distance_instructions: minor,
                    ..PendingPair::default()
                };
                if opp.on_predicted_path {
                    self.state = State::CountingMinor { remaining: minor };
                    TagDecision::Tag(TagId(0))
                } else {
                    // Empty first selection: deliver an empty pair and
                    // restart (the useful-rate cost of opportunity
                    // counting).
                    self.pending.first = Some(Sample {
                        record: None,
                        selected_cycle: opp.cycle,
                    });
                    self.pending.second = Some(Sample {
                        record: None,
                        selected_cycle: opp.cycle,
                    });
                    self.pending.second_selected = true;
                    self.pending.second_cycle = Some(opp.cycle);
                    self.finish_pair_if_complete();
                    TagDecision::Pass
                }
            }
            State::CountingMinor { remaining } => {
                *remaining -= 1;
                if *remaining > 0 {
                    return TagDecision::Pass;
                }
                self.pending.second_selected = true;
                self.pending.second_cycle = Some(opp.cycle);
                if opp.on_predicted_path {
                    self.state = State::WaitingCompletions;
                    TagDecision::Tag(TagId(1))
                } else {
                    self.pending.second = Some(Sample {
                        record: None,
                        selected_cycle: opp.cycle,
                    });
                    self.state = State::WaitingCompletions;
                    self.finish_pair_if_complete();
                    TagDecision::Pass
                }
            }
            State::WaitingCompletions | State::Stalled => TagDecision::Pass,
        }
    }

    fn on_tagged_complete(&mut self, record: &CompletedSample) {
        let sample = Sample {
            record: Some(record.clone()),
            selected_cycle: record.timestamps.fetched,
        };
        match record.tag {
            TagId(0) => self.pending.first = Some(sample),
            TagId(1) => self.pending.second = Some(sample),
            TagId(t) => unreachable!("paired hardware only issues tags 0 and 1, got {t}"),
        }
        self.finish_pair_if_complete();
    }

    fn take_interrupt(&mut self) -> Option<InterruptRequest> {
        if self.pending_interrupt {
            self.pending_interrupt = false;
            Some(InterruptRequest {
                skid: self.config.interrupt_skid,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use profileme_isa::Pc;

    fn opp(cycle: u64) -> FetchOpportunity {
        FetchOpportunity {
            cycle,
            slot: 0,
            pc: Some(Pc::new(0x1000)),
            inst: Some(profileme_isa::Inst::nop()),
            on_predicted_path: true,
            seq: Some(1),
        }
    }

    fn completed(tag: TagId, fetched: u64) -> CompletedSample {
        CompletedSample {
            tag,
            seq: 1,
            pc: Pc::new(0x1000),
            context: 1,
            class: profileme_isa::OpClass::Nop,
            events: profileme_uarch::EventSet::new(),
            retired: true,
            eff_addr: None,
            taken: None,
            history: profileme_cfg::BranchHistory::new(),
            timestamps: profileme_uarch::Timestamps {
                fetched,
                ..profileme_uarch::Timestamps::default()
            },
            latencies: None,
            mem_latency: None,
        }
    }

    fn hw(major: u64, window: u64) -> PairedHardware {
        PairedHardware::new(PairedConfig {
            mean_major_interval: major,
            window,
            randomize: false,
            selection: SelectionMode::FetchedInstructions,
            buffer_depth: 1,
            interrupt_skid: 2,
            seed: 5,
        })
    }

    /// Drives the hardware until both tags fire, returning the minor
    /// distance used.
    fn select_pair(hw: &mut PairedHardware) -> (u64, u64) {
        let mut cycle = 0;
        let mut first_cycle = None;
        loop {
            match hw.on_fetch_opportunity(&opp(cycle)) {
                TagDecision::Tag(TagId(0)) => first_cycle = Some(cycle),
                TagDecision::Tag(TagId(1)) => {
                    return (first_cycle.expect("first selected before second"), cycle)
                }
                _ => {}
            }
            cycle += 1;
        }
    }

    #[test]
    fn pair_interrupts_only_after_both_complete() {
        let mut h = hw(3, 8);
        let (c0, c1) = select_pair(&mut h);
        assert!(c1 > c0);
        assert_eq!(h.take_interrupt(), None);
        // Completions can arrive in either order; finish the second first.
        h.on_tagged_complete(&completed(TagId(1), c1));
        assert_eq!(h.take_interrupt(), None);
        h.on_tagged_complete(&completed(TagId(0), c0));
        assert!(h.take_interrupt().is_some());
        let pairs = h.drain_pairs();
        assert_eq!(pairs.len(), 1);
        let p = &pairs[0];
        assert!(p.is_complete());
        assert_eq!(p.distance_cycles, c1 - c0);
        assert!(p.distance_instructions >= 1 && p.distance_instructions <= 8);
        // In this driver one instruction is offered per cycle, so the
        // cycle distance equals the instruction distance.
        assert_eq!(p.distance_instructions, c1 - c0);
    }

    #[test]
    fn minor_distances_span_the_window() {
        let mut h = PairedHardware::new(PairedConfig {
            mean_major_interval: 2,
            window: 4,
            randomize: true,
            ..PairedConfig::default()
        });
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let (c0, c1) = select_pair(&mut h);
            h.on_tagged_complete(&completed(TagId(0), c0));
            h.on_tagged_complete(&completed(TagId(1), c1));
            let pair = h.drain_pairs().remove(0);
            seen.insert(pair.distance_instructions);
        }
        assert_eq!(seen, (1..=4).collect());
    }

    #[test]
    fn no_third_selection_while_pair_outstanding() {
        let mut h = hw(1, 2);
        let (c0, c1) = select_pair(&mut h);
        for cycle in c1 + 1..c1 + 20 {
            assert_eq!(h.on_fetch_opportunity(&opp(cycle)), TagDecision::Pass);
        }
        h.on_tagged_complete(&completed(TagId(0), c0));
        h.on_tagged_complete(&completed(TagId(1), c1));
        h.drain_pairs();
        // Re-armed now.
        assert!(matches!(
            h.on_fetch_opportunity(&opp(100)),
            TagDecision::Tag(TagId(0))
        ));
    }
}
