//! Instruction selection: the Fetched Instruction Counter (§4.1.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What the Fetched Instruction Counter counts (§4.1.1).
///
/// Counting instructions on the predicted control path requires handling
/// a variable number per cycle; counting *fetch opportunities* (fetch
/// width × cycles) is simpler hardware but wastes samples on slots that
/// carry no predicted-path instruction. The ablation
/// `ablation_selection` quantifies that trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionMode {
    /// Count instructions fetched on the predicted control path.
    FetchedInstructions,
    /// Count fetch opportunities (slots), occupied or not.
    FetchOpportunities,
}

/// Generates sampling intervals for reloading the counter.
///
/// The paper has profiling software write a pseudo-random value at every
/// interrupt; with sample buffering (§4.3) the hardware must reload
/// between interrupts, so the generator lives hardware-side, seeded by
/// software. Randomization (uniform ±50% around the mean) avoids
/// synchronizing with loops; it can be disabled to demonstrate exactly
/// that bias (`ablation_random_intervals`).
#[derive(Debug, Clone)]
pub struct IntervalGenerator {
    mean: u64,
    randomize: bool,
    rng: StdRng,
}

impl IntervalGenerator {
    /// Creates a generator with the given mean interval.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is zero.
    pub fn new(mean: u64, randomize: bool, seed: u64) -> IntervalGenerator {
        assert!(mean > 0, "sampling interval must be positive");
        IntervalGenerator {
            mean,
            randomize,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured mean interval.
    pub fn mean(&self) -> u64 {
        self.mean
    }

    /// The next counter reload value (always at least 1).
    pub fn next_interval(&mut self) -> u64 {
        if self.randomize {
            let lo = self.mean.div_ceil(2).max(1);
            let hi = self.mean + self.mean / 2;
            self.rng.gen_range(lo..=hi)
        } else {
            self.mean
        }
    }

    /// A uniform value in `1..=window` (the minor interval of paired
    /// sampling).
    pub fn next_minor(&mut self, window: u64) -> u64 {
        self.rng.gen_range(1..=window.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randomized_intervals_cover_the_range() {
        let mut g = IntervalGenerator::new(100, true, 7);
        let vals: Vec<u64> = (0..200).map(|_| g.next_interval()).collect();
        assert!(vals.iter().all(|&v| (50..=150).contains(&v)));
        assert!(vals.iter().any(|&v| v < 80));
        assert!(vals.iter().any(|&v| v > 120));
    }

    #[test]
    fn fixed_intervals_are_constant() {
        let mut g = IntervalGenerator::new(64, false, 7);
        assert!((0..10).all(|_| g.next_interval() == 64));
    }

    #[test]
    fn minor_intervals_stay_in_window() {
        let mut g = IntervalGenerator::new(1000, true, 3);
        for _ in 0..200 {
            let m = g.next_minor(48);
            assert!((1..=48).contains(&m));
        }
    }
}
