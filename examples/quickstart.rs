//! Quickstart: profile a small hand-written program with ProfileMe and
//! print an instruction-level report — sampled estimates next to the
//! simulator's exact ground truth.
//!
//! Run with: `cargo run --release --example quickstart`

use profileme::core::{ProfileMeConfig, Session};
use profileme::isa::{Cond, ProgramBuilder, Reg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A loop with three characters of instruction mixed together:
    //  - a striding load that misses the D-cache,
    //  - a data-dependent branch the predictor cannot learn,
    //  - plain arithmetic.
    let mut b = ProgramBuilder::new();
    b.function("main");
    b.load_imm(Reg::R9, 30_000); // iterations
    b.load_imm(Reg::R10, 0x2545_F491); // xorshift state
    b.load_imm(Reg::R12, 0x10_0000); // stride pointer
    let top = b.label("top");
    // xorshift step
    b.shl(Reg::R11, Reg::R10, 13);
    b.xor(Reg::R10, Reg::R10, Reg::R11);
    b.shr(Reg::R11, Reg::R10, 7);
    b.xor(Reg::R10, Reg::R10, Reg::R11);
    // striding load: a new cache line (and often a new page) every time
    b.load(Reg::R1, Reg::R12, 0);
    b.addi(Reg::R12, Reg::R12, 4096);
    // unpredictable branch on a state bit
    let skip = b.forward_label("skip");
    b.and(Reg::R2, Reg::R10, 1);
    b.cond_br(Cond::Eq0, Reg::R2, skip);
    b.add(Reg::R3, Reg::R3, Reg::R1);
    b.place(skip);
    b.addi(Reg::R9, Reg::R9, -1);
    b.cond_br(Cond::Ne0, Reg::R9, top);
    b.halt();
    let program = b.build()?;

    // Sample one instruction per ~128 fetched, buffering 8 samples per
    // interrupt.
    let run = Session::builder(program.clone())
        .sampling(ProfileMeConfig {
            mean_interval: 128,
            buffer_depth: 8,
            ..ProfileMeConfig::default()
        })
        .build()?
        .profile_single()?;

    println!(
        "simulated {} cycles, {} instructions retired (IPC {:.2}), {} samples\n",
        run.cycles,
        run.stats.retired,
        run.stats.ipc(),
        run.samples.len(),
    );
    println!(
        "{:<10} {:<22} {:>9} {:>9} {:>8} {:>8} {:>8} {:>9}",
        "pc", "instruction", "est.ret", "act.ret", "d$miss%", "mispr%", "abort%", "avg.lat"
    );
    for (pc, prof) in run.db.iter() {
        let inst = program.fetch(pc).expect("sampled pcs are in the image");
        let actual = run.stats.at(&program, pc).map_or(0, |s| s.retired);
        let pct = |n: u64| 100.0 * n as f64 / prof.samples.max(1) as f64;
        let avg_latency = if prof.samples > 0 {
            prof.in_progress_sum as f64 / prof.samples as f64
        } else {
            0.0
        };
        println!(
            "{:<10} {:<22} {:>9.0} {:>9} {:>7.1}% {:>7.1}% {:>7.1}% {:>9.1}",
            pc.to_string(),
            inst.to_string(),
            run.db.estimated_retires(pc).value(),
            actual,
            pct(prof.dcache_misses),
            pct(prof.mispredicted),
            pct(prof.aborted),
            avg_latency,
        );
    }

    // Headline: where do the samples say the cycles went?
    let (worst, _) = run
        .db
        .iter()
        .max_by(|(_, a), (_, b)| (a.in_progress_sum).cmp(&b.in_progress_sum))
        .expect("samples were collected");
    println!(
        "\nlongest-latency instruction: {worst}  {}",
        program.fetch(worst).expect("in image")
    );
    Ok(())
}
