//! Path profiling from branch-history bits (§5.3): reconstruct the
//! execution paths leading to sampled instructions using the Profiled
//! Path Register, and compare the three schemes of Figure 6.
//!
//! Run with: `cargo run --release --example path_profile`

use profileme::cfg::{Cfg, Scope, TraceRecorder};
use profileme::core::{PathProfiler, PathScheme};
use profileme::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = workloads::go(4_000);
    println!("workload: {} — {}\n", w.name, w.description);

    let mut cfg = Cfg::build(&w.program);

    // Pass 1: learn indirect-jump edges and edge frequencies.
    let mut learn = TraceRecorder::with_state(profileme::isa::ArchState::with_memory(
        &w.program,
        w.memory.clone(),
    ));
    while !learn.halted() {
        learn.step(&w.program, &cfg)?;
    }
    for &(from, to) in learn.indirect_edges() {
        cfg.add_indirect_edge(from, to);
    }
    let edge_profile = learn.edge_profile().clone();

    // Pass 2: sample instructions and reconstruct their paths.
    let profiler = PathProfiler::new(&cfg, &w.program);
    let mut rec = TraceRecorder::with_state(profileme::isa::ArchState::with_memory(
        &w.program,
        w.memory.clone(),
    ));
    let history_len = 8;
    let mut attempts = 0u32;
    let mut successes = [0u32; 3];
    let mut shown = 0;
    let mut step = 0u64;
    while !rec.halted() {
        if step.is_multiple_of(97) {
            let snap = rec.snapshot(&cfg);
            if let Some(truth) =
                snap.ground_truth(&cfg, &w.program, history_len, Scope::Interprocedural)
            {
                attempts += 1;
                for (i, scheme) in PathScheme::ALL.iter().enumerate() {
                    let out = profiler.reconstruct(
                        *scheme,
                        snap.sample_pc,
                        &snap.history,
                        history_len,
                        snap.pc_before(7),
                        &edge_profile,
                        Scope::Interprocedural,
                    );
                    if out.is_success(&truth) {
                        successes[i] += 1;
                        if *scheme == PathScheme::HistoryBits && shown < 3 {
                            shown += 1;
                            println!(
                                "sample at {} with history {} -> unique path of {} blocks:",
                                snap.sample_pc,
                                snap.history,
                                truth.len()
                            );
                            let names: Vec<String> =
                                truth.blocks.iter().map(|b| b.to_string()).collect();
                            println!("    {}\n", names.join(" -> "));
                        }
                    }
                }
            }
        }
        rec.step(&w.program, &cfg)?;
        step += 1;
    }

    println!("reconstruction success over {attempts} samples (history length {history_len}):");
    for (i, scheme) in PathScheme::ALL.iter().enumerate() {
        println!(
            "  {:<32} {:>5.1}%",
            scheme.to_string(),
            100.0 * successes[i] as f64 / attempts.max(1) as f64
        );
    }
    println!(
        "\nHistory bits beat execution counts because each sample's Profiled Path\n\
         Register pins down the *actual* branch directions; adding the paired\n\
         sample's PC discards surviving impostor paths."
    );
    Ok(())
}
