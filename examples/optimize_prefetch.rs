//! §7 in action: close the profile→optimize loop.
//!
//! The paper: "The lack of information about actual latencies means that
//! compilers schedule loads and stores assuming that they will hit in
//! the data cache. [...] ProfileMe provides a cheap way of gathering the
//! data needed to drive these optimizations." Here profiling software
//! uses ProfileMe samples to (1) find the load that misses, (2) recover
//! its access stride from the Profiled Address Register values, and
//! (3) insert a software prefetch — then measures the speedup.
//!
//! Run with: `cargo run --release --example optimize_prefetch`

use profileme::core::{ProfileMeConfig, Session};
use profileme::isa::{Cond, Pc, Program, ProgramBuilder, Reg};
use profileme::uarch::{NullHardware, Pipeline, PipelineConfig};

const ITERS: i64 = 60_000;
const STRIDE: i64 = 64;

/// A streaming kernel: walk a multi-megabyte array one cache line at a
/// time, accumulating. `prefetch_bytes_ahead` optionally inserts the
/// software prefetch a fixed distance ahead of the load.
fn kernel(prefetch_bytes_ahead: Option<i64>) -> (Program, Pc) {
    let mut b = ProgramBuilder::new();
    b.function("stream");
    b.load_imm(Reg::R9, ITERS);
    b.load_imm(Reg::R12, 0x100_0000);
    let top = b.label("top");
    let load_pc = b.current_pc();
    b.load(Reg::R1, Reg::R12, 0);
    b.add(Reg::R14, Reg::R14, Reg::R1);
    b.xor(Reg::R2, Reg::R1, Reg::R14);
    b.shr(Reg::R3, Reg::R2, 7);
    if let Some(d) = prefetch_bytes_ahead {
        b.prefetch(Reg::R12, d);
    }
    b.addi(Reg::R12, Reg::R12, STRIDE);
    b.addi(Reg::R9, Reg::R9, -1);
    b.cond_br(Cond::Ne0, Reg::R9, top);
    b.halt();
    (b.build().expect("kernel builds"), load_pc)
}

fn cycles(p: &Program) -> (u64, u64, u64) {
    let mut sim = Pipeline::new(p.clone(), PipelineConfig::default(), NullHardware);
    sim.run(u64::MAX).expect("kernel completes");
    (
        sim.stats().cycles,
        sim.stats().dcache_misses,
        sim.stats().dcache_accesses,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- step 1: profile the unoptimized kernel -----------------------
    let (plain, load_pc) = kernel(None);
    let run = Session::builder(plain.clone())
        .sampling(ProfileMeConfig {
            mean_interval: 96,
            buffer_depth: 8,
            ..ProfileMeConfig::default()
        })
        .build()?
        .profile_single()?;

    let (worst_pc, prof) = run
        .db
        .iter()
        .max_by_key(|(_, p)| p.dcache_misses)
        .expect("samples were collected");
    println!(
        "profile says: worst D-cache offender is {worst_pc}  `{}`",
        plain.fetch(worst_pc).unwrap()
    );
    println!(
        "  sampled miss rate {:.0}%, average load latency {:.1} cycles",
        100.0 * prof.dcache_misses as f64 / prof.retired.max(1) as f64,
        prof.mem_latency_sum as f64 / prof.mem_latency_samples.max(1) as f64
    );
    assert_eq!(
        worst_pc, load_pc,
        "the profile pinpoints the streaming load"
    );

    // ---- step 2: recover the stride from sampled addresses ------------
    let mut addrs: Vec<u64> = run
        .samples
        .iter()
        .filter_map(|s| s.record.as_ref())
        .filter(|r| r.pc == worst_pc && r.retired)
        .filter_map(|r| r.eff_addr)
        .collect();
    addrs.sort_unstable();
    addrs.dedup();
    // Sampled addresses are many iterations apart, but every delta is a
    // multiple of the stride: the GCD of the deltas recovers it.
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    let stride = addrs.windows(2).map(|w| w[1] - w[0]).fold(0, gcd);
    println!("  Profiled Address Register values reveal a {stride}-byte stride (gcd of deltas)");
    assert_eq!(stride as i64, STRIDE);

    // ---- step 3: insert the prefetch and measure -----------------------
    // Cover the miss latency: prefetch ~16 lines ahead.
    let distance = stride as i64 * 16;
    let (optimized, _) = kernel(Some(distance));
    let (c0, m0, a0) = cycles(&plain);
    let (c1, m1, a1) = cycles(&optimized);
    println!(
        "\n{:<14} {:>12} {:>12} {:>14}",
        "kernel", "cycles", "d$ misses", "load miss rate"
    );
    println!(
        "{:<14} {:>12} {:>12} {:>13.1}%",
        "plain",
        c0,
        m0,
        100.0 * m0 as f64 / a0 as f64
    );
    println!(
        "{:<14} {:>12} {:>12} {:>13.1}%",
        "prefetching",
        c1,
        m1,
        100.0 * m1 as f64 / a1 as f64
    );
    let speedup = c0 as f64 / c1 as f64;
    println!("\nspeedup from profile-guided prefetching: {speedup:.2}x");
    assert!(speedup > 1.2, "prefetching should pay off ({speedup:.2}x)");

    // The demand load now hits: its misses moved to the prefetch.
    let plain_load_misses = {
        let mut sim = Pipeline::new(plain, PipelineConfig::default(), NullHardware);
        sim.run(u64::MAX)?;
        sim.stats()
            .at(sim.program(), load_pc)
            .unwrap()
            .dcache_misses
    };
    println!("demand-load misses: {plain_load_misses} -> (moved onto the prefetch instruction)");
    Ok(())
}
