//! A DCPI-style "where did the time go" report: roll instruction samples
//! up to procedures (§3's aggregate level), then drill into the hottest
//! one at instruction granularity.
//!
//! Run with: `cargo run --release --example procedure_report`

use profileme::core::{procedure_summaries, ProfileMeConfig, Session};
use profileme::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = workloads::gcc(40);
    println!("workload: {} — {}\n", w.name, w.description);
    let run = Session::builder(w.program.clone())
        .memory(w.memory)
        .sampling(ProfileMeConfig {
            mean_interval: 64,
            buffer_depth: 16,
            ..ProfileMeConfig::default()
        })
        .build()?
        .profile_single()?;

    let procs = procedure_summaries(&run.db, &w.program);
    println!("{} procedures with samples; hottest first:\n", procs.len());
    println!(
        "{:<16} {:>9} {:>12} {:>9} {:>8} {:>8}",
        "procedure", "samples", "est.retires", "latency%", "i$miss", "abort%"
    );
    let total_latency: u64 = procs.iter().map(|p| p.in_progress_sum).sum();
    for p in procs.iter().take(12) {
        println!(
            "{:<16} {:>9} {:>12.0} {:>8.1}% {:>8} {:>7.1}%",
            p.name,
            p.samples,
            p.estimated_retires,
            100.0 * p.in_progress_sum as f64 / total_latency.max(1) as f64,
            p.icache_misses,
            100.0 * p.aborted as f64 / p.samples.max(1) as f64,
        );
    }

    // Drill into the hottest procedure at instruction level.
    let hottest = &procs[0];
    println!(
        "\nhottest procedure `{}` at instruction level (top 6 by latency):",
        hottest.name
    );
    let f = w.program.function_named(&hottest.name);
    let mut rows: Vec<_> = run
        .db
        .iter()
        .filter(|(pc, _)| f.as_ref().is_some_and(|f| f.contains(*pc)))
        .collect();
    rows.sort_by_key(|(_, p)| std::cmp::Reverse(p.in_progress_sum));
    for (pc, prof) in rows.iter().take(6) {
        println!(
            "  {:<10} {:<22} {:>6} samples, Σ in-progress {:>8} cycles",
            pc.to_string(),
            w.program.fetch(*pc).expect("in image").to_string(),
            prof.samples,
            prof.in_progress_sum,
        );
    }
    Ok(())
}
