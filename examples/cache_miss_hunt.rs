//! Hunt the cache-missing instruction in the pointer-chasing `li`
//! workload: the scenario §7's "cache and TLB hit rate enhancement"
//! optimizations start from — ProfileMe's per-instruction miss
//! attribution plus the Profiled Address Register's effective addresses.
//!
//! Run with: `cargo run --release --example cache_miss_hunt`

use profileme::core::{ProfileMeConfig, Session};
use profileme::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = workloads::li(60_000);
    println!("workload: {} — {}\n", w.name, w.description);

    let run = Session::builder(w.program.clone())
        .memory(w.memory)
        .sampling(ProfileMeConfig {
            mean_interval: 96,
            buffer_depth: 8,
            ..ProfileMeConfig::default()
        })
        .build()?
        .profile_single()?;

    // Rank instructions by estimated D-cache misses.
    let mut ranked: Vec<_> = run.db.iter().filter(|(_, p)| p.dcache_misses > 0).collect();
    ranked.sort_by_key(|(_, p)| std::cmp::Reverse(p.dcache_misses));

    println!(
        "{:<10} {:<20} {:>12} {:>12} {:>10}",
        "pc", "instruction", "est.misses", "act.misses", "miss rate"
    );
    for (pc, prof) in ranked.iter().take(8) {
        let est = run.db.estimated_dcache_misses(*pc);
        let actual = run.stats.at(&w.program, *pc).map_or(0, |s| s.dcache_misses);
        let rate = prof.dcache_misses as f64 / prof.samples.max(1) as f64;
        println!(
            "{:<10} {:<20} {:>12.0} {:>12} {:>9.1}%",
            pc.to_string(),
            w.program.fetch(*pc).expect("in image").to_string(),
            est.value(),
            actual,
            100.0 * rate
        );
    }

    // The effective addresses of the worst instruction's missing samples
    // reveal the access pattern (here: a shuffled walk over a big region).
    let (worst, _) = ranked[0];
    let mut addrs: Vec<u64> = run
        .samples
        .iter()
        .filter_map(|s| s.record.as_ref())
        .filter(|r| r.pc == worst && r.events.contains(profileme::uarch::EventSet::DCACHE_MISS))
        .filter_map(|r| r.eff_addr)
        .collect();
    addrs.sort_unstable();
    if let (Some(lo), Some(hi)) = (addrs.first(), addrs.last()) {
        println!(
            "\nworst instruction {worst} touched {} distinct sampled addresses in {:#x}..{:#x}",
            addrs.len(),
            lo,
            hi
        );
        println!(
            "(span {:.1} MiB — far beyond any cache: the footprint itself is the problem)",
            (hi - lo) as f64 / (1024.0 * 1024.0)
        );
    }

    // Average memory latency seen by the worst load.
    let prof = run.db.at(worst);
    if prof.mem_latency_samples > 0 {
        println!(
            "average load-to-completion latency: {:.1} cycles over {} samples",
            prof.mem_latency_sum as f64 / prof.mem_latency_samples as f64,
            prof.mem_latency_samples
        );
    }
    Ok(())
}
