//! Wasted issue slots vs latency (the Figure 7 story): run the three-loop
//! program under *paired sampling* and show that total latency alone
//! cannot identify the real bottleneck — the memory loop's loads have the
//! longest latencies but keep the machine usefully busy, while the serial
//! divide chain wastes nearly every slot under it.
//!
//! Run with: `cargo run --release --example wasted_slots`

use profileme::core::{pipeline_population, wasted_issue_slots, PairedConfig, Session};
use profileme::uarch::PipelineConfig;
use profileme::workloads::loops3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let l3 = loops3(8_000);
    let w = &l3.workload;
    println!("workload: {} — {}\n", w.name, w.description);

    let pipeline = PipelineConfig::default();
    let issue_width = pipeline.issue_width as u64;
    let run = Session::builder(w.program.clone())
        .memory(w.memory.clone())
        .pipeline(pipeline)
        .paired_sampling(PairedConfig {
            mean_major_interval: 64,
            window: 64,
            buffer_depth: 4,
            ..PairedConfig::default()
        })
        .build()?
        .profile_paired()?;
    println!(
        "collected {} pairs over {} cycles (effective S = {} instructions)\n",
        run.pairs.len(),
        run.cycles,
        run.db.interval()
    );

    println!(
        "{:<9} {:<10} {:<20} {:>14} {:>14} {:>9}",
        "loop", "pc", "instruction", "total latency", "wasted slots", "useful%"
    );
    let mut per_loop = [(0.0f64, 0.0f64); 3]; // (latency, wasted)
    for (pc, prof) in run.db.iter() {
        let Some(loop_idx) = l3.loop_of(pc) else {
            continue;
        };
        let ws = wasted_issue_slots(&run.db, pc, issue_width);
        let useful_pct = if ws.total_slots > 0.0 {
            100.0 * ws.useful_slots.min(ws.total_slots) / ws.total_slots
        } else {
            0.0
        };
        per_loop[loop_idx].0 += ws.total_latency;
        per_loop[loop_idx].1 += ws.wasted();
        if prof.samples >= 8 {
            println!(
                "{:<9} {:<10} {:<20} {:>14.0} {:>14.0} {:>8.1}%",
                l3.loops[loop_idx].0,
                pc.to_string(),
                w.program.fetch(pc).expect("in image").to_string(),
                ws.total_latency,
                ws.wasted(),
                useful_pct
            );
        }
    }

    println!("\nper-loop totals (the Figure 7 contrast):");
    println!(
        "{:<10} {:>16} {:>16} {:>22}",
        "loop", "Σ latency", "Σ wasted slots", "wasted per latency"
    );
    for (i, (name, _, _)) in l3.loops.iter().enumerate() {
        let (lat, wasted) = per_loop[i];
        println!(
            "{:<10} {:>16.0} {:>16.0} {:>22.2}",
            name,
            lat,
            wasted,
            if lat > 0.0 { wasted / lat } else { 0.0 }
        );
    }
    println!(
        "\nIf latency alone identified bottlenecks, the ratios above would be equal.\n\
         They are not: the serial loop wastes far more issue capacity per cycle of\n\
         latency than the memory loop, whose misses overlap useful work."
    );

    // §5.2.2's hint, realized: reconstruct the average pipeline
    // population around one hot instruction of each loop.
    println!("\nreconstructed pipeline population around each loop's hottest instruction");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "loop", "front-end", "op-wait", "fu-wait", "executing", "ret-wait", "total"
    );
    for (i, (name, _, _)) in l3.loops.iter().enumerate() {
        let hottest = run
            .db
            .iter()
            .filter(|(pc, _)| l3.loop_of(*pc) == Some(i))
            .max_by_key(|(_, p)| p.samples)
            .map(|(pc, _)| pc);
        let Some(pc) = hottest else { continue };
        let Some(pop) = pipeline_population(&run.pairs, pc, run.db.window()) else {
            continue;
        };
        println!(
            "{:<10} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>8.1}",
            name,
            pop.front_end,
            pop.waiting_operands,
            pop.waiting_issue,
            pop.executing,
            pop.waiting_retire,
            pop.total()
        );
    }
    println!(
        "\nAround the serial loop, neighbours are starved: stuck in the front end and\n\
         waiting for operands behind the divide chain. Around the other loops they\n\
         have already finished and are merely queued for in-order retirement — the\n\
         same story the wasted-slot metric told, reconstructed at pipeline-stage\n\
         granularity from nothing but paired samples."
    );
    Ok(())
}
