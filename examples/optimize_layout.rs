//! §7's code-layout optimization, end to end: profile with ProfileMe,
//! derive edge weights from sampled branch directions, form hot chains,
//! reorder the basic blocks so the hot path falls through — then measure.
//!
//! The victim program has twelve biased diamonds per loop iteration whose
//! *hot* arms were laid out at the bottom of the function (as an
//! unprofiled compiler plausibly might): the hot path takes two jumps per
//! diamond and spans many I-cache lines. After profile-guided relayout
//! the hot arms fall through inline.
//!
//! Run with: `cargo run --release --example optimize_layout`

use profileme::cfg::Cfg;
use profileme::core::{ProfileMeConfig, Session};
use profileme::isa::{Cond, Program, ProgramBuilder, Reg};
use profileme::opt::{edge_weights_from_profile, hot_chains, reorder_blocks};
use profileme::uarch::{NullHardware, Pipeline, PipelineConfig};

const DIAMONDS: usize = 12;
const ITERS: i64 = 30_000;

/// The deliberately bad layout: every diamond's hot arm is a far-away
/// block reached by a taken branch, padded so the hot path is scattered
/// across many cache lines.
fn victim() -> Program {
    let mut b = ProgramBuilder::new();
    b.function("main");
    let mut hot_arms = Vec::new();
    let mut joins = Vec::new();
    b.load_imm(Reg::R9, ITERS);
    b.load_imm(Reg::R10, 0x5eed_cafe);
    let top = b.label("top");
    for d in 0..DIAMONDS {
        // xorshift-ish step so directions are data dependent but biased.
        b.shl(Reg::R11, Reg::R10, 13);
        b.xor(Reg::R10, Reg::R10, Reg::R11);
        b.shr(Reg::R11, Reg::R10, 7);
        b.xor(Reg::R10, Reg::R10, Reg::R11);
        b.and(Reg::R2, Reg::R10, 15);
        let hot = b.forward_label(format!("hot{d}"));
        let join = b.forward_label(format!("join{d}"));
        // Taken ~15/16 of the time — and taken goes far away.
        b.cond_br(Cond::Ne0, Reg::R2, hot);
        b.addi(Reg::R3, Reg::R3, 1); // cold arm (inline)
        b.place(join);
        hot_arms.push(hot);
        joins.push(join);
    }
    b.addi(Reg::R9, Reg::R9, -1);
    b.cond_br(Cond::Ne0, Reg::R9, top);
    b.halt();
    // The hot arms, far below, each padded to spread over cache lines.
    for (d, (hot, join)) in hot_arms.into_iter().zip(joins).enumerate() {
        b.place(hot);
        for k in 0..24i64 {
            b.addi(
                Reg::new(4 + ((d as i64 + k) % 4) as u8),
                Reg::new(4 + ((d as i64 + k) % 4) as u8),
                1,
            );
        }
        b.jmp(join);
    }
    b.build().expect("victim builds")
}

fn measure(p: &Program) -> (u64, u64, u64) {
    let mut sim = Pipeline::new(p.clone(), PipelineConfig::default(), NullHardware);
    sim.run(u64::MAX).expect("program completes");
    let taken: u64 = sim.stats().per_pc.iter().map(|s| s.taken).sum();
    (sim.stats().cycles, sim.stats().icache_misses, taken)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p = victim();
    println!(
        "victim: {} instructions, {} diamonds x {} iterations, hot arms at the bottom\n",
        p.len(),
        DIAMONDS,
        ITERS
    );

    // 1. Profile.
    let run = Session::builder(p.clone())
        .sampling(ProfileMeConfig {
            mean_interval: 48,
            buffer_depth: 8,
            ..ProfileMeConfig::default()
        })
        .build()?
        .profile_single()?;
    println!("profiled: {} samples", run.samples.len());

    // 2. Weights -> chains -> relayout.
    let cfg = Cfg::build(&p);
    let weights = edge_weights_from_profile(&run.db, &cfg);
    let order = hot_chains(&p, &cfg, &weights);
    let (q, remap) = reorder_blocks(&p, &cfg, &order)?;
    println!(
        "relayout: {} of {} instructions survive (elided jumps account for the rest)",
        remap.len(),
        p.len()
    );

    // 3. Verify behaviour, then measure.
    let mut a = profileme::isa::ArchState::new(&p);
    let mut b = profileme::isa::ArchState::new(&q);
    a.run(&p, 100_000_000)?;
    b.run(&q, 100_000_000)?;
    for r in 0..26u8 {
        assert_eq!(a.reg(Reg::new(r)), b.reg(Reg::new(r)), "r{r} differs");
    }
    println!("architectural equivalence: verified\n");

    let (c0, i0, t0) = measure(&p);
    let (c1, i1, t1) = measure(&q);
    println!(
        "{:<12} {:>12} {:>12} {:>14}",
        "layout", "cycles", "i$ misses", "taken branches"
    );
    println!("{:<12} {:>12} {:>12} {:>14}", "original", c0, i0, t0);
    println!("{:<12} {:>12} {:>12} {:>14}", "optimized", c1, i1, t1);
    println!(
        "\nspeedup {:.2}x; taken branches cut {:.0}% (hot arms now fall through)",
        c0 as f64 / c1 as f64,
        100.0 * (1.0 - t1 as f64 / t0 as f64)
    );
    assert!(c1 < c0, "relayout should pay off");
    assert!(t1 < t0 / 2, "most taken branches straightened");
    Ok(())
}
