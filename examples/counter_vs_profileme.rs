//! Event counters vs ProfileMe on the same machine (the §2.2 motivation):
//! run the Figure 2 microbenchmark under both mechanisms and show that
//! counter interrupts smear D-cache events across dozens of PCs while
//! ProfileMe attributes every sampled event to the exact instruction.
//!
//! Run with: `cargo run --release --example counter_vs_profileme`

use profileme::core::{ProfileMeConfig, Session};
use profileme::counters::{CounterHardware, PcHistogram};
use profileme::uarch::{HwEventKind, Pipeline, PipelineConfig};
use profileme::workloads::microbench;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (w, load_pc) = microbench(200, 4_000);
    println!("microbenchmark: loop {{ load (the only D-cache access) ; 200 nops }}");
    println!("the load lives at {load_pc}\n");

    // --- Event counters on the out-of-order machine -------------------
    let hw = CounterHardware::new(HwEventKind::DCacheAccess, 3, 6, 42).with_skid_jitter(12);
    let mut sim = Pipeline::new(w.program.clone(), PipelineConfig::default(), hw);
    let mut hist = PcHistogram::new();
    sim.run_with(u64::MAX, |intr, hw| {
        hist.record(intr.attributed_pc);
        hw.rearm();
    })?;

    println!("event-counter attribution ({} interrupts):", hist.total());
    println!("{:>8}  count", "offset");
    for (offset, count) in hist.offsets_from(load_pc) {
        let bar = "#".repeat((count as usize).min(60));
        println!("{offset:>+8}  {count:<5} {bar}");
    }
    println!(
        "  -> events attributed to the load itself: {:.1}%",
        100.0 * hist.count(load_pc) as f64 / hist.total().max(1) as f64
    );
    println!(
        "  -> 90% of the mass is spread over {} distinct PCs\n",
        hist.spread(0.9)
    );

    // --- ProfileMe on the identical machine ---------------------------
    let run = Session::builder(w.program.clone())
        .sampling(ProfileMeConfig {
            mean_interval: 64,
            buffer_depth: 8,
            ..ProfileMeConfig::default()
        })
        .build()?
        .profile_single()?;
    let mem_samples: u64 = run
        .db
        .iter()
        .filter(|(pc, _)| w.program.fetch(*pc).is_some_and(|i| i.is_mem()))
        .map(|(_, p)| p.samples)
        .sum();
    let at_load = run.db.at(load_pc).samples;
    println!(
        "ProfileMe attribution ({} samples total):",
        run.samples.len()
    );
    println!(
        "  -> memory-operation samples: {mem_samples}, of which at the load: {at_load} (100% exact)"
    );
    println!(
        "  -> estimated executions of the load: {:.0} (actual {})",
        run.db.estimated_fetches(load_pc).value(),
        run.stats.at(&w.program, load_pc).map_or(0, |s| s.retired),
    );
    println!(
        "\nSame pipeline, same program: the counter cannot say *which* instruction\n\
         missed; ProfileMe records the PC (and the address, latency, and events)\n\
         in the sample itself."
    );
    Ok(())
}
