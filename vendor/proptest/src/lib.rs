//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The workspace's property tests use a small slice of proptest:
//! `proptest! { fn case(x in strategy, ...) { ... } }`, integer/float
//! range strategies, [`Just`], [`any`], `prop_oneof!`,
//! `prop::collection::vec`, `.prop_map`, and the `prop_assert*` macros.
//! This crate implements exactly that slice with **deterministic seeded
//! generation and no shrinking**: each test function derives its RNG seed
//! from its own name, so failures are reproducible run-to-run (at the
//! cost of less variety than upstream's persistent-corpus approach).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies (re-exported so macros can name it).
pub type TestRng = StdRng;

/// Derives the deterministic RNG for one property-test function.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Runner configuration (subset of upstream's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator (subset of upstream's `Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (subset of `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_via_gen!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Object-safe strategy view, used by [`Union`] (`prop_oneof!`).
pub trait DynStrategy<V> {
    /// Draws one value through the erased strategy.
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A uniform choice among several strategies (the `prop_oneof!` result).
pub struct Union<V> {
    branches: Vec<Box<dyn DynStrategy<V>>>,
}

impl<V> Union<V> {
    /// Builds a union over the given erased branches.
    pub fn new(branches: Vec<Box<dyn DynStrategy<V>>>) -> Union<V> {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }

    /// Boxes one branch (helper for `prop_oneof!`).
    pub fn boxed<S: Strategy<Value = V> + 'static>(s: S) -> Box<dyn DynStrategy<V>> {
        Box::new(s)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_range(0..self.branches.len());
        self.branches[idx].generate_dyn(rng)
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` values with lengths in `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property-test functions: each `fn name(x in strategy, ...)`
/// becomes a `#[test]` running the body over seeded generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..__config.cases {
                    let ($($arg,)*) =
                        ($( $crate::Strategy::generate(&($strat), &mut __rng), )*);
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// A uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($branch:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Union::boxed($branch)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::test_rng("ranges");
        let s = (1u8..4).prop_map(|v| v * 10);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!([10, 20, 30].contains(&v));
        }
    }

    #[test]
    fn union_hits_every_branch() {
        let mut rng = crate::test_rng("union");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_strategy_respects_lengths() {
        let mut rng = crate::test_rng("vec");
        let s = crate::collection::vec(0u64..10, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself wires config, generation, and assertions.
        #[test]
        fn macro_smoke(x in 0u64..100, flip in any::<bool>(), v in prop::collection::vec(1u8..3, 1..4)) {
            prop_assert!(x < 100);
            let bit = u8::from(flip);
            prop_assert!(bit < 2);
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert_ne!(v[0], 0);
        }
    }
}
