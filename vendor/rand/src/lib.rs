//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator behind `StdRng` is xoshiro256** seeded through
//! SplitMix64 — not the ChaCha12 stream the real crate uses, so seeded
//! sequences differ from upstream `rand`, but they are deterministic
//! across runs, threads, and platforms, which is the property the
//! simulator and the experiment engine rely on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the subset of `rand::RngCore` the
/// workspace needs.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` seed (via SplitMix64
    /// expansion, as upstream does).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from an RNG with `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits into [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics when empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform draw from `[0, bound)` by rejection sampling (unbiased).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Largest multiple of `bound` that fits in a u64.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Convenience extension methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`. Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Not the same stream as upstream `rand`'s `StdRng` (ChaCha12), but
    /// a high-quality generator with the same construction interface.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, lane) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *lane = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let u: usize = rng.gen_range(0..=0);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}
