//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! This build environment has no crates.io access, so the workspace
//! vendors a self-contained value-tree serialization framework under the
//! serde names it already uses: `#[derive(Serialize, Deserialize)]`,
//! `use serde::{Serialize, Deserialize}`, and (via the sibling
//! `serde_json` stub) `to_string` / `to_string_pretty` / `from_str` /
//! `from_slice` / `Value`.
//!
//! Unlike real serde there is no zero-copy `Serializer`/`Deserializer`
//! machinery: [`Serialize`] renders to an owned [`Value`] tree and
//! [`Deserialize`] reads back out of one. That is plenty for the
//! workspace's uses (profile persistence and experiment JSON dumps) and
//! keeps the vendored code small enough to audit.
//!
//! Representation choices (self-consistent round-trips; not guaranteed to
//! match upstream serde_json byte-for-byte):
//!
//! * named structs → objects in declaration order;
//! * one-field tuple structs (newtypes) → the inner value, transparently;
//! * wider tuple structs and tuples → arrays;
//! * unit enum variants → their name as a string; data variants →
//!   `{"Variant": payload}`;
//! * maps → objects when the key serializes to a string, otherwise arrays
//!   of `[key, value]` pairs (hash maps are sorted by key first so output
//!   is deterministic across processes).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map), so
/// serialized output is deterministic and matches declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Negative or signed integers.
    I64(i64),
    /// Non-negative integers that may exceed `i64::MAX`.
    U64(u64),
    /// Floating-point numbers.
    F64(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Wraps a payload as an externally tagged enum variant.
    pub fn variant(name: &str, payload: Value) -> Value {
        Value::Object(vec![(name.to_string(), payload)])
    }

    /// The object's fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(elems) => Some(elems),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The `(tag, payload)` pair, if this is a single-field object (the
    /// encoding of a data-carrying enum variant).
    pub fn as_variant(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(fields) if fields.len() == 1 => {
                Some((fields[0].0.as_str(), &fields[0].1))
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Looks up a field of an object by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// A (de)serialization error: a message plus the type being processed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// A free-form error message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }

    /// "expected X while deserializing T".
    pub fn expected(what: &str, ty: &str) -> Error {
        Error(format!("expected {what} while deserializing {ty}"))
    }

    /// A missing object field.
    pub fn missing_field(field: &str, ty: &str) -> Error {
        Error(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// An unrecognized enum variant tag.
    pub fn unknown_variant(tag: &str, ty: &str) -> Error {
        Error(format!("unknown variant `{tag}` for {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization out of a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads `Self` back out of a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Derive-macro helper: extracts and deserializes one object field.
pub fn from_field<T: Deserialize>(
    obj: &[(String, Value)],
    key: &str,
    ty: &str,
) -> Result<T, Error> {
    let v = obj
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::missing_field(key, ty))?;
    T::from_value(v)
}

// ---------------------------------------------------------------------
// Serialize impls for primitives and std containers.
// ---------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::expected("number", stringify!($t)))
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::expected("boolean", "bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::expected("string", "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-character string", "char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let vec: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(vec).map_err(|_| Error::expected("array of fixed length", "[T; N]"))
    }
}

macro_rules! ser_de_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::expected("array", "tuple"))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(Error::expected("tuple-length array", "tuple"));
                }
                Ok(($($t::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Renders map entries: an object when every key serializes to a string,
/// otherwise an array of `[key, value]` pairs.
fn map_to_value(entries: Vec<(Value, Value)>) -> Value {
    if entries.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| match k {
                    Value::Str(s) => (s, v),
                    _ => unreachable!(),
                })
                .collect(),
        )
    } else {
        Value::Array(
            entries
                .into_iter()
                .map(|(k, v)| Value::Array(vec![k, v]))
                .collect(),
        )
    }
}

fn map_from_value<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    match v {
        Value::Object(fields) => fields
            .iter()
            .map(|(k, val)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(val)?)))
            .collect(),
        Value::Array(pairs) => pairs
            .iter()
            .map(|pair| {
                let kv = pair
                    .as_array()
                    .ok_or_else(|| Error::expected("[key, value]", "map"))?;
                if kv.len() != 2 {
                    return Err(Error::expected("[key, value]", "map"));
                }
                Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
            })
            .collect(),
        _ => Err(Error::expected("object or pair array", "map")),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        // Hash iteration order varies per process; sort rendered keys so
        // serialized output is deterministic.
        entries.sort_by(|(a, _), (b, _)| format!("{a:?}").cmp(&format!("{b:?}")));
        map_to_value(entries)
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trips_through_null() {
        let some: Option<u64> = Some(7);
        let none: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<u64>::from_value(&none.to_value()).unwrap(), none);
    }

    #[test]
    fn maps_with_non_string_keys_use_pair_arrays() {
        let mut m = BTreeMap::new();
        m.insert(3u64, "c".to_string());
        m.insert(1u64, "a".to_string());
        let v = m.to_value();
        assert!(matches!(v, Value::Array(_)));
        let back: BTreeMap<u64, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn string_keyed_maps_become_objects() {
        let mut m = BTreeMap::new();
        m.insert("x".to_string(), 1u64);
        let v = m.to_value();
        assert!(v.as_object().is_some());
        let back: BTreeMap<String, u64> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tuples_round_trip() {
        let t = (1u64, -2i64, true);
        let back: (u64, i64, bool) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }
}
