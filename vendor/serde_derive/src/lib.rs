//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde subset.
//!
//! The container this workspace builds in has no crates.io access, so
//! `syn`/`quote` are unavailable; the macro parses the item declaration
//! directly out of the raw [`proc_macro::TokenStream`]. It supports the
//! shapes this workspace actually derives on:
//!
//! * structs with named fields,
//! * tuple structs (any arity; one-field newtypes serialize transparently),
//! * unit structs,
//! * enums whose variants are unit, tuple, or struct-like.
//!
//! Generic type parameters and `#[serde(...)]` attributes are not
//! supported and produce a compile error naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips any `#[...]` attributes starting at `i`; returns the new index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a `pub` / `pub(...)` visibility qualifier starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits a field-list token stream on commas, respecting `<...>` nesting
/// (delimited groups are single tokens, so only angle brackets need
/// explicit depth tracking). Returns the token slices of each non-empty
/// piece.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut pieces = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if !current.is_empty() {
                        pieces.push(std::mem::take(&mut current));
                    }
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        pieces.push(current);
    }
    pieces
}

/// Extracts the field name from one named-field declaration
/// (`attrs vis name : type`).
fn named_field_name(piece: &[TokenTree]) -> Result<String, String> {
    let i = skip_vis(piece, skip_attrs(piece, 0));
    match piece.get(i) {
        Some(TokenTree::Ident(id)) => Ok(id.to_string()),
        other => Err(format!("expected field name, found {other:?}")),
    }
}

fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    split_top_level_commas(&tokens)
        .iter()
        .map(|p| named_field_name(p))
        .collect()
}

fn parse_tuple_arity(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    split_top_level_commas(&tokens).len()
}

fn parse_variants(group: &proc_macro::Group) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(parse_tuple_arity(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g)?)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "derive on generic type `{name}` is not supported by the offline serde subset"
            ));
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(parse_tuple_arity(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g)?)
            }
            other => return Err(format!("unsupported enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive on `{other}`")),
    };
    Ok(Item { name, shape })
}

/// Derives the offline-serde `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{pushes}])")
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let elems: String = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k}),"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{elems}])")
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\
                             ::std::string::String::from({vname:?})),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let pat = binders.join(", ");
                            let elems: String = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({pat}) => ::serde::Value::variant({vname:?}, \
                                 ::serde::Value::Array(::std::vec![{elems}])),"
                            )
                        }
                        VariantShape::Named(fields) => {
                            let pat = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {pat} }} => ::serde::Value::variant({vname:?}, \
                                 ::serde::Value::Object(::std::vec![{pushes}])),"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// Derives the offline-serde `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::from_field(obj, {f:?}, {name:?})?,"))
                .collect();
            format!(
                "let obj = v.as_object().ok_or_else(|| \
                     ::serde::Error::expected(\"object\", {name:?}))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: String = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&arr[{k}])?,"))
                .collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| \
                     ::serde::Error::expected(\"array\", {name:?}))?;\n\
                 if arr.len() != {n} {{ \
                     return ::std::result::Result::Err(\
                         ::serde::Error::expected(\"array of {n}\", {name:?})); }}\n\
                 ::std::result::Result::Ok({name}({inits}))"
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(n) => {
                            let inits: String = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&arr[{k}])?,"))
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                     let arr = inner.as_array().ok_or_else(|| \
                                         ::serde::Error::expected(\"array\", {name:?}))?;\n\
                                     if arr.len() != {n} {{ \
                                         return ::std::result::Result::Err(\
                                             ::serde::Error::expected(\
                                                 \"array of {n}\", {name:?})); }}\n\
                                     ::std::result::Result::Ok({name}::{vname}({inits}))\n\
                                 }}"
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!("{f}: ::serde::from_field(obj, {f:?}, {name:?})?,")
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                     let obj = inner.as_object().ok_or_else(|| \
                                         ::serde::Error::expected(\"object\", {name:?}))?;\n\
                                     ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                                 }}"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let ::std::option::Option::Some(s) = v.as_str() {{\n\
                     return match s {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(\
                             ::serde::Error::unknown_variant(other, {name:?})),\n\
                     }};\n\
                 }}\n\
                 let (tag, inner) = v.as_variant().ok_or_else(|| \
                     ::serde::Error::expected(\"variant\", {name:?}))?;\n\
                 match tag {{\n\
                     {data_arms}\n\
                     other => ::std::result::Result::Err(\
                         ::serde::Error::unknown_variant(other, {name:?})),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
