//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Text rendering and parsing over the vendored [`serde`] value tree.
//! Covers the API surface this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`from_slice`], [`Value`], and the
//! [`json!`] macro.
//!
//! Output is deterministic: objects render in insertion order (struct
//! declaration order), floats through Rust's shortest-round-trip
//! formatting, and hash-map entries are pre-sorted by the `serde` layer.

#![forbid(unsafe_code)]

pub use serde::{Error, Value};

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Returns an error if a non-finite float is encountered (JSON has no
/// representation for NaN/infinity).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (two-space indent).
///
/// # Errors
///
/// Returns an error if a non-finite float is encountered.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Deserializes a `T` from JSON bytes (must be UTF-8).
///
/// # Errors
///
/// Returns an error on invalid UTF-8, malformed JSON, or a shape
/// mismatch with `T`.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] from JSON-like literal syntax with interpolated
/// expressions, e.g. `json!({"name": w.name, "cycles": cycles})`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elems:tt)* ]) => { $crate::json_array!([$($elems)*] -> []) };
    ({ $($fields:tt)* }) => { $crate::json_object!([$($fields)*] -> []) };
    ($other:expr) => { ::serde::Serialize::to_value(&$other) };
}

/// Internal: accumulates array elements for [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    // Done.
    ([] -> [$($done:expr),*]) => { $crate::Value::Array(vec![$($done),*]) };
    // Next element is a nested array or object or null literal.
    ([null $(, $($rest:tt)*)?] -> [$($done:expr),*]) => {
        $crate::json_array!([$($($rest)*)?] -> [$($done,)* $crate::Value::Null])
    };
    ([[$($inner:tt)*] $(, $($rest:tt)*)?] -> [$($done:expr),*]) => {
        $crate::json_array!([$($($rest)*)?] -> [$($done,)* $crate::json!([$($inner)*])])
    };
    ([{$($inner:tt)*} $(, $($rest:tt)*)?] -> [$($done:expr),*]) => {
        $crate::json_array!([$($($rest)*)?] -> [$($done,)* $crate::json!({$($inner)*})])
    };
    // Plain expression element.
    ([$head:expr $(, $($rest:tt)*)?] -> [$($done:expr),*]) => {
        $crate::json_array!([$($($rest)*)?] -> [$($done,)* $crate::json!($head)])
    };
}

/// Internal: accumulates object fields for [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    // Done.
    ([] -> [$($done:expr),*]) => { $crate::Value::Object(vec![$($done),*]) };
    // Key with nested-container or null value.
    ([$key:literal : null $(, $($rest:tt)*)?] -> [$($done:expr),*]) => {
        $crate::json_object!([$($($rest)*)?] ->
            [$($done,)* (::std::string::String::from($key), $crate::Value::Null)])
    };
    ([$key:literal : [$($inner:tt)*] $(, $($rest:tt)*)?] -> [$($done:expr),*]) => {
        $crate::json_object!([$($($rest)*)?] ->
            [$($done,)* (::std::string::String::from($key), $crate::json!([$($inner)*]))])
    };
    ([$key:literal : {$($inner:tt)*} $(, $($rest:tt)*)?] -> [$($done:expr),*]) => {
        $crate::json_object!([$($($rest)*)?] ->
            [$($done,)* (::std::string::String::from($key), $crate::json!({$($inner)*}))])
    };
    // Key with a plain expression value.
    ([$key:literal : $value:expr $(, $($rest:tt)*)?] -> [$($done:expr),*]) => {
        $crate::json_object!([$($($rest)*)?] ->
            [$($done,)* (::std::string::String::from($key), $crate::json!($value))])
    };
}

// ---------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------

fn write_value(
    v: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::custom("JSON cannot represent non-finite floats"));
            }
            // Rust's shortest round-trip formatting; force a `.0` so the
            // value parses back as a float.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Array(elems) => {
            if elems.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, e) in elems.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(e, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns an error describing the first malformed construct.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(elems));
        }
        loop {
            self.skip_ws();
            elems.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(elems));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::custom(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape".to_string()))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code).ok_or_else(|| {
                                    Error::custom("bad \\u code point".to_string())
                                })?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string".to_string())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number".to_string()))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("compress".to_string())),
            ("cycles".to_string(), Value::U64(123)),
            ("ipc".to_string(), Value::F64(1.5)),
            (
                "tags".to_string(),
                Value::Array(vec![Value::I64(-1), Value::Null]),
            ),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn floats_render_parseably() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        let back: f64 = from_str("1.0").unwrap();
        assert!((back - 1.0).abs() < 1e-12);
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn json_macro_builds_objects_and_arrays() {
        let name = "go";
        let v = json!({
            "workload": name,
            "counts": [1, 2, 3],
            "nested": {"ok": true, "missing": null},
        });
        assert_eq!(v.get("workload").and_then(Value::as_str), Some("go"));
        assert_eq!(
            v.get("counts").and_then(Value::as_array).map(Vec::len),
            Some(3)
        );
        assert_eq!(
            v.get("nested")
                .and_then(|n| n.get("ok"))
                .and_then(Value::as_bool),
            Some(true)
        );
    }

    #[test]
    fn escapes_round_trip() {
        let s = "line\n\"quoted\"\\tab\there".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn large_u64_round_trips() {
        let n = u64::MAX;
        let back: u64 = from_str(&to_string(&n).unwrap()).unwrap();
        assert_eq!(back, n);
    }
}
