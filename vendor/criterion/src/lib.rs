//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the subset the workspace benches use — `criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `sample_size`,
//! `throughput`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `black_box` — with a plain mean-of-N wall-clock
//! measurement and a text report instead of upstream's statistical
//! machinery and HTML output. Good enough for relative comparisons on a
//! quiet machine; not a statistics engine.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Work-unit annotation for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured routine processes this many logical elements.
    Elements(u64),
    /// The measured routine processes this many bytes.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter rendering.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Things accepted where a benchmark id is expected (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing harness handed to benchmark closures.
pub struct Bencher {
    samples: u64,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the configured number of samples and records
    /// the aggregate. One untimed warm-up call precedes measurement.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += self.samples;
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Sets the work-unit annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_id();
        let mut b = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into_id();
        let mut b = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&mut self, id: &str, b: &Bencher) {
        if b.iters == 0 {
            println!("{}/{id}: no iterations recorded", self.name);
            return;
        }
        let mean = b.total.as_secs_f64() / b.iters as f64;
        let mut line = format!("{}/{id}: mean {}", self.name, fmt_seconds(mean));
        if let Some(tp) = self.throughput {
            let (units, label) = match tp {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            if mean > 0.0 {
                line.push_str(&format!("  ({:.3e} {label})", units / mean));
            }
        }
        println!("{line}");
        self.criterion.reported += 1;
    }
}

fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    reported: u64,
}

impl Criterion {
    /// Upstream-compatible no-op (command-line configuration hook).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = BenchmarkGroup {
            criterion: self,
            name: "bench".to_string(),
            sample_size: 10,
            throughput: None,
        };
        group.bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions into one named runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` invoking each group runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter("plain"), |b| b.iter(|| 1 + 1));
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn group_macro_and_timing_run() {
        benches();
    }
}
